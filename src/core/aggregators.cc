#include "core/aggregators.h"

#include "core/lstm_aggregator.h"

#include "common/check.h"
#include "obs/trace.h"

namespace lasagne {

std::string AggregatorKindName(AggregatorKind kind) {
  switch (kind) {
    case AggregatorKind::kWeighted:
      return "weighted";
    case AggregatorKind::kMaxPooling:
      return "maxpool";
    case AggregatorKind::kStochastic:
      return "stochastic";
    case AggregatorKind::kMean:
      return "mean";
    case AggregatorKind::kLstm:
      return "lstm";
  }
  return "unknown";
}

namespace {

// Cross-layer GC transformations W(il) for history entries i < l; the
// current (last) layer needs none.
std::vector<ag::Variable> MakeTransforms(
    const std::vector<size_t>& layer_dims, Rng& rng) {
  std::vector<ag::Variable> transforms;
  LASAGNE_CHECK(!layer_dims.empty());
  const size_t out_dim = layer_dims.back();
  for (size_t i = 0; i + 1 < layer_dims.size(); ++i) {
    transforms.push_back(ag::MakeParameter(
        Tensor::GlorotUniform(layer_dims[i], out_dim, rng)));
  }
  return transforms;
}

}  // namespace

// ---------------------------------------------------------------------------
// Weighted (Eq. 5)
// ---------------------------------------------------------------------------

WeightedAggregator::WeightedAggregator(size_t num_nodes,
                                       std::vector<size_t> layer_dims,
                                       Rng& rng)
    : layer_dims_(std::move(layer_dims)) {
  LASAGNE_CHECK(!layer_dims_.empty());
  const size_t l = layer_dims_.size();
  // Initialize every contribution to 1/l so the initial behaviour is a
  // balanced dense aggregation; training then specializes per node.
  c_ = ag::MakeParameter(
      Tensor::Full(num_nodes, l, 1.0f / static_cast<float>(l)));
  transforms_ = MakeTransforms(layer_dims_, rng);
}

ag::Variable WeightedAggregator::Aggregate(
    const std::shared_ptr<const CsrMatrix>& a_hat,
    const std::vector<ag::Variable>& history,
    const nn::ForwardContext& ctx) {
  LASAGNE_TRACE_SCOPE("aggregate.weighted");
  (void)ctx;
  LASAGNE_CHECK_EQ(history.size(), layer_dims_.size());
  const size_t l = history.size();
  std::vector<ag::Variable> terms;
  terms.reserve(l);
  for (size_t i = 0; i + 1 < l; ++i) {
    ag::Variable weight_col = ag::SliceCols(c_, i, 1);
    ag::Variable transformed = ag::MatMul(history[i], transforms_[i]);
    terms.push_back(
        ag::SpMM(a_hat, ag::RowScale(transformed, weight_col)));
  }
  ag::Variable current_col = ag::SliceCols(c_, l - 1, 1);
  terms.push_back(ag::RowScale(history.back(), current_col));
  return terms.size() == 1 ? terms[0] : ag::AddMany(terms);
}

std::vector<ag::Variable> WeightedAggregator::Parameters() const {
  std::vector<ag::Variable> params = {c_};
  for (const auto& w : transforms_) params.push_back(w);
  return params;
}

// ---------------------------------------------------------------------------
// Max pooling (§4.1.2)
// ---------------------------------------------------------------------------

MaxPoolingAggregator::MaxPoolingAggregator(std::vector<size_t> layer_dims,
                                           Rng& rng)
    : layer_dims_(std::move(layer_dims)) {
  transforms_ = MakeTransforms(layer_dims_, rng);
}

ag::Variable MaxPoolingAggregator::Aggregate(
    const std::shared_ptr<const CsrMatrix>& a_hat,
    const std::vector<ag::Variable>& history,
    const nn::ForwardContext& ctx) {
  LASAGNE_TRACE_SCOPE("aggregate.maxpool");
  (void)ctx;
  LASAGNE_CHECK_EQ(history.size(), layer_dims_.size());
  const size_t l = history.size();
  if (l == 1) return history[0];
  std::vector<ag::Variable> candidates;
  candidates.reserve(l);
  for (size_t i = 0; i + 1 < l; ++i) {
    candidates.push_back(
        ag::SpMM(a_hat, ag::MatMul(history[i], transforms_[i])));
  }
  candidates.push_back(history.back());
  return ag::MaxOverSet(candidates);
}

std::vector<ag::Variable> MaxPoolingAggregator::Parameters() const {
  return transforms_;
}

// ---------------------------------------------------------------------------
// Stochastic (Eq. 6)
// ---------------------------------------------------------------------------

StochasticAggregator::StochasticAggregator(ag::Variable shared_p,
                                           size_t layer_index,
                                           std::vector<size_t> layer_dims,
                                           Rng& rng)
    : p_(std::move(shared_p)),
      layer_index_(layer_index),
      layer_dims_(std::move(layer_dims)) {
  LASAGNE_CHECK(p_ != nullptr);
  LASAGNE_CHECK_LE(layer_dims_.size(), p_->cols());
  transforms_ = MakeTransforms(layer_dims_, rng);
}

ag::Variable StochasticAggregator::Aggregate(
    const std::shared_ptr<const CsrMatrix>& a_hat,
    const std::vector<ag::Variable>& history,
    const nn::ForwardContext& ctx) {
  LASAGNE_TRACE_SCOPE("aggregate.stochastic");
  LASAGNE_CHECK(ctx.rng != nullptr);
  LASAGNE_CHECK_EQ(history.size(), layer_dims_.size());
  const size_t l = history.size();
  // Eq. 6: activation probability exp(P_ij) / max_j exp(P_ij) over the
  // columns visible to this layer.
  ag::Variable visible = ag::SliceCols(p_, 0, l);
  ag::Variable exp_p = ag::Exp(visible);
  ag::Variable row_max = ag::RowMax(exp_p);
  ag::Variable probs = ag::RowDivide(exp_p, row_max);
  ag::Variable gates =
      ag::BernoulliStraightThrough(probs, *ctx.rng, ctx.training);
  std::vector<ag::Variable> terms;
  terms.reserve(l);
  for (size_t i = 0; i + 1 < l; ++i) {
    ag::Variable gate_col = ag::SliceCols(gates, i, 1);
    ag::Variable transformed = ag::MatMul(history[i], transforms_[i]);
    terms.push_back(ag::SpMM(a_hat, ag::RowScale(transformed, gate_col)));
  }
  terms.push_back(
      ag::RowScale(history.back(), ag::SliceCols(gates, l - 1, 1)));
  return terms.size() == 1 ? terms[0] : ag::AddMany(terms);
}

std::vector<ag::Variable> StochasticAggregator::Parameters() const {
  // p_ is shared across layers; the model deduplicates when collecting.
  std::vector<ag::Variable> params = {p_};
  for (const auto& w : transforms_) params.push_back(w);
  return params;
}

// ---------------------------------------------------------------------------
// Mean (custom-aggregator example)
// ---------------------------------------------------------------------------

MeanAggregator::MeanAggregator(std::vector<size_t> layer_dims, Rng& rng)
    : layer_dims_(std::move(layer_dims)) {
  transforms_ = MakeTransforms(layer_dims_, rng);
}

ag::Variable MeanAggregator::Aggregate(
    const std::shared_ptr<const CsrMatrix>& a_hat,
    const std::vector<ag::Variable>& history,
    const nn::ForwardContext& ctx) {
  LASAGNE_TRACE_SCOPE("aggregate.mean");
  (void)ctx;
  LASAGNE_CHECK_EQ(history.size(), layer_dims_.size());
  const size_t l = history.size();
  std::vector<ag::Variable> terms;
  for (size_t i = 0; i + 1 < l; ++i) {
    terms.push_back(
        ag::SpMM(a_hat, ag::MatMul(history[i], transforms_[i])));
  }
  terms.push_back(history.back());
  ag::Variable sum = terms.size() == 1 ? terms[0] : ag::AddMany(terms);
  return ag::ScalarMul(sum, 1.0f / static_cast<float>(l));
}

std::vector<ag::Variable> MeanAggregator::Parameters() const {
  return transforms_;
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

std::unique_ptr<LayerAggregator> MakeAggregator(
    AggregatorKind kind, size_t num_nodes, size_t layer_index,
    std::vector<size_t> layer_dims, ag::Variable shared_p, Rng& rng) {
  switch (kind) {
    case AggregatorKind::kWeighted:
      return std::make_unique<WeightedAggregator>(num_nodes,
                                                  std::move(layer_dims), rng);
    case AggregatorKind::kMaxPooling:
      return std::make_unique<MaxPoolingAggregator>(std::move(layer_dims),
                                                    rng);
    case AggregatorKind::kStochastic:
      return std::make_unique<StochasticAggregator>(
          std::move(shared_p), layer_index, std::move(layer_dims), rng);
    case AggregatorKind::kMean:
      return std::make_unique<MeanAggregator>(std::move(layer_dims), rng);
    case AggregatorKind::kLstm:
      return std::make_unique<LstmAggregator>(std::move(layer_dims),
                                              /*lstm_hidden=*/16, rng);
  }
  LASAGNE_CHECK_MSG(false, "unknown aggregator kind");
  return nullptr;
}

}  // namespace lasagne
