#include "core/aggregator_analysis.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/check.h"
#include "graph/algorithms.h"
#include "metrics/mutual_info.h"

namespace lasagne {

std::string AggregatorReport::Summary() const {
  std::ostringstream os;
  os << "Aggregator analysis (" << aggregator << ", " << num_layers
     << " gated layers)\n";
  os << "  mean gate per layer:";
  for (double m : mean_per_layer) {
    os << " " << std::round(m * 100.0) / 100.0;
  }
  os << "\n  Spearman(PageRank, early-layer preference) = "
     << std::round(pagerank_early_preference_spearman * 1000.0) / 1000.0
     << "\n  central decile early-preference    = "
     << std::round(central_early_preference * 1000.0) / 1000.0
     << "\n  peripheral decile early-preference = "
     << std::round(peripheral_early_preference * 1000.0) / 1000.0 << "\n";
  auto row = [&os](const char* tag, const std::vector<double>& gates) {
    os << "  " << tag << " gates: [";
    for (size_t i = 0; i < gates.size(); ++i) {
      os << (i ? ", " : "") << std::round(gates[i] * 100.0) / 100.0;
    }
    os << "]\n";
  };
  row("most central node  ", most_central_gates);
  row("least central node ", least_central_gates);
  return os.str();
}

AggregatorReport AnalyzeAggregator(const LasagneModel& model,
                                   const Dataset& data) {
  // Gate matrix: stochastic probabilities or normalized |C| weights.
  Tensor gates;
  AggregatorReport report;
  if (model.config().aggregator == AggregatorKind::kStochastic) {
    gates = model.StochasticProbabilities();
    report.aggregator = "stochastic";
  } else if (model.config().aggregator == AggregatorKind::kWeighted) {
    Tensor c = model.WeightedContributions();
    LASAGNE_CHECK(!c.empty());
    gates = Tensor(c.rows(), c.cols());
    for (size_t i = 0; i < c.rows(); ++i) {
      double total = 0.0;
      for (size_t j = 0; j < c.cols(); ++j) {
        total += std::fabs(c(i, j));
      }
      for (size_t j = 0; j < c.cols(); ++j) {
        gates(i, j) = total > 1e-12
                          ? static_cast<float>(std::fabs(c(i, j)) / total)
                          : 0.0f;
      }
    }
    report.aggregator = "weighted";
  } else {
    LASAGNE_CHECK_MSG(false,
                      "AnalyzeAggregator requires a node-indexed "
                      "aggregator (stochastic or weighted)");
  }
  LASAGNE_CHECK_EQ(gates.rows(), data.num_nodes());
  const size_t n = gates.rows();
  const size_t l = gates.cols();
  LASAGNE_CHECK_GE(l, 2u);
  report.num_layers = l;

  for (size_t j = 0; j < l; ++j) {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) total += gates(i, j);
    report.mean_per_layer.push_back(total / static_cast<double>(n));
  }

  Tensor pagerank = PageRank(data.graph);
  std::vector<double> pr(n), early(n);
  for (size_t i = 0; i < n; ++i) {
    pr[i] = pagerank(i, 0);
    early[i] = gates(i, 0) - gates(i, l - 1);
  }
  report.pagerank_early_preference_spearman =
      SpearmanCorrelation(pr, early);

  // Decile means and the two anecdote nodes.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&pr](size_t a, size_t b) { return pr[a] > pr[b]; });
  const size_t decile = std::max<size_t>(1, n / 10);
  double central = 0.0, peripheral = 0.0;
  for (size_t k = 0; k < decile; ++k) {
    central += early[order[k]];
    peripheral += early[order[n - 1 - k]];
  }
  report.central_early_preference = central / static_cast<double>(decile);
  report.peripheral_early_preference =
      peripheral / static_cast<double>(decile);

  for (size_t j = 0; j < l; ++j) {
    report.most_central_gates.push_back(gates(order.front(), j));
    report.least_central_gates.push_back(gates(order.back(), j));
  }
  return report;
}

}  // namespace lasagne
