#include "core/lstm_aggregator.h"

#include "common/check.h"
#include "obs/trace.h"

namespace lasagne {

LstmCell::LstmCell(size_t input_dim, size_t hidden_dim, Rng& rng)
    : input_dim_(input_dim), hidden_dim_(hidden_dim) {
  w_x_ = ag::MakeParameter(
      Tensor::GlorotUniform(input_dim, 4 * hidden_dim, rng));
  w_h_ = ag::MakeParameter(
      Tensor::GlorotUniform(hidden_dim, 4 * hidden_dim, rng));
  // Forget-gate bias starts at 1 (the standard trick that keeps early
  // timesteps alive at initialization).
  Tensor bias(1, 4 * hidden_dim);
  for (size_t j = hidden_dim; j < 2 * hidden_dim; ++j) bias(0, j) = 1.0f;
  bias_ = ag::MakeParameter(std::move(bias));
}

LstmCell::State LstmCell::InitialState(size_t n) const {
  return {ag::MakeConstant(Tensor::Zeros(n, hidden_dim_)),
          ag::MakeConstant(Tensor::Zeros(n, hidden_dim_))};
}

LstmCell::State LstmCell::Step(const ag::Variable& x_t,
                               const State& prev) const {
  LASAGNE_CHECK_EQ(x_t->cols(), input_dim_);
  const size_t n = x_t->rows();
  ag::Variable ones = ag::MakeConstant(Tensor::Ones(n, 1));
  ag::Variable gates = ag::Add(
      ag::Add(ag::MatMul(x_t, w_x_), ag::MatMul(prev.h, w_h_)),
      ag::MatMul(ones, bias_));
  ag::Variable i = ag::Sigmoid(ag::SliceCols(gates, 0, hidden_dim_));
  ag::Variable f =
      ag::Sigmoid(ag::SliceCols(gates, hidden_dim_, hidden_dim_));
  ag::Variable g =
      ag::Tanh(ag::SliceCols(gates, 2 * hidden_dim_, hidden_dim_));
  ag::Variable o =
      ag::Sigmoid(ag::SliceCols(gates, 3 * hidden_dim_, hidden_dim_));
  ag::Variable c = ag::Add(ag::Mul(f, prev.c), ag::Mul(i, g));
  ag::Variable h = ag::Mul(o, ag::Tanh(c));
  return {h, c};
}

std::vector<ag::Variable> LstmCell::Parameters() const {
  return {w_x_, w_h_, bias_};
}

LstmAggregator::LstmAggregator(std::vector<size_t> layer_dims,
                               size_t lstm_hidden, Rng& rng)
    : layer_dims_(std::move(layer_dims)) {
  LASAGNE_CHECK(!layer_dims_.empty());
  const size_t out = layer_dims_.back();
  for (size_t i = 0; i + 1 < layer_dims_.size(); ++i) {
    transforms_.push_back(
        ag::MakeParameter(Tensor::GlorotUniform(layer_dims_[i], out, rng)));
  }
  cell_ = std::make_unique<LstmCell>(out, lstm_hidden, rng);
  attn_ = ag::MakeParameter(Tensor::GlorotUniform(lstm_hidden, 1, rng));
}

ag::Variable LstmAggregator::Aggregate(
    const std::shared_ptr<const CsrMatrix>& a_hat,
    const std::vector<ag::Variable>& history,
    const nn::ForwardContext& ctx) {
  LASAGNE_TRACE_SCOPE("aggregate.lstm");
  (void)ctx;
  LASAGNE_CHECK_EQ(history.size(), layer_dims_.size());
  const size_t l = history.size();
  if (l == 1) return history[0];
  const size_t n = history[0]->rows();

  // Candidates: propagated cross-layer transforms + the current layer.
  std::vector<ag::Variable> candidates;
  candidates.reserve(l);
  for (size_t i = 0; i + 1 < l; ++i) {
    candidates.push_back(
        ag::SpMM(a_hat, ag::MatMul(history[i], transforms_[i])));
  }
  candidates.push_back(history.back());

  // LSTM over the layer "sequence"; one attention logit per timestep.
  LstmCell::State state = cell_->InitialState(n);
  std::vector<ag::Variable> scores;
  scores.reserve(l);
  for (size_t t = 0; t < l; ++t) {
    state = cell_->Step(candidates[t], state);
    scores.push_back(ag::MatMul(state.h, attn_));  // N x 1
  }
  // Per-node softmax over the l timesteps.
  ag::Variable score_matrix = ag::ConcatCols(scores);  // N x l
  ag::Variable row_max = ag::RowMax(score_matrix);
  ag::Variable ones_row =
      ag::MakeConstant(Tensor::Ones(n, l));
  ag::Variable shifted =
      ag::Sub(score_matrix, ag::RowScale(ones_row, row_max));
  ag::Variable exps = ag::Exp(shifted);
  ag::Variable denom =
      ag::MatMul(exps, ag::MakeConstant(Tensor::Ones(l, 1)));
  ag::Variable alpha = ag::RowDivide(exps, denom);

  // Attention-weighted mixture of the candidates.
  std::vector<ag::Variable> terms;
  terms.reserve(l);
  for (size_t t = 0; t < l; ++t) {
    terms.push_back(
        ag::RowScale(candidates[t], ag::SliceCols(alpha, t, 1)));
  }
  return ag::AddMany(terms);
}

std::vector<ag::Variable> LstmAggregator::Parameters() const {
  std::vector<ag::Variable> params = transforms_;
  for (const auto& p : cell_->Parameters()) params.push_back(p);
  params.push_back(attn_);
  return params;
}

}  // namespace lasagne
