#ifndef LASAGNE_CORE_AGGREGATORS_H_
#define LASAGNE_CORE_AGGREGATORS_H_

#include <memory>
#include <string>
#include <vector>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "nn/layers.h"
#include "sparse/csr_matrix.h"

namespace lasagne {

/// Which node-aware layer aggregator Lasagne uses (paper §4.1).
enum class AggregatorKind {
  kWeighted,    // §4.1.1, Eq. 5
  kMaxPooling,  // §4.1.2
  kStochastic,  // §4.1.3, Eq. 6
  kMean,        // the "other custom aggregations are possible" example
  kLstm,        // LSTM over the layer history (also paper-suggested)
};

std::string AggregatorKindName(AggregatorKind kind);

/// Node-aware layer aggregator (paper Eq. 4):
///   H(l) = Aggregator(C(l), H(1), ..., H(l)).
///
/// One instance serves one layer position `l`; it owns that position's
/// trainable state (the contribution matrix C(l) and the cross-layer GC
/// transformations W(il)). `history` holds the aggregated outputs of
/// layers 1..l-1 followed by the current layer's raw output.
class LayerAggregator {
 public:
  virtual ~LayerAggregator() = default;

  /// Combines the layer history into this layer's output. The
  /// propagation operator is passed per call so inductive training can
  /// swap graphs.
  virtual ag::Variable Aggregate(
      const std::shared_ptr<const CsrMatrix>& a_hat,
      const std::vector<ag::Variable>& history,
      const nn::ForwardContext& ctx) = 0;

  virtual std::vector<ag::Variable> Parameters() const = 0;
  virtual std::string name() const = 0;

  /// True when the aggregator owns parameters indexed by node id (the
  /// paper's reason Weighted/Stochastic cannot run inductively).
  virtual bool node_indexed() const = 0;
};

/// Weighted aggregator (Eq. 5):
///   H(l) = sum_{i<l} A_hat (C(l)[:,i] (x) H(i) W(il)) + C(l)[:,l] (x) H(l)
/// where C(l) in R^{N x l} gives every node its own per-layer mixing
/// weights and W(il) are cross-layer GC transformations that also free
/// the layers to use different hidden dimensions.
class WeightedAggregator : public LayerAggregator {
 public:
  /// `layer_dims`: dims of history entries 1..l (last = current layer).
  WeightedAggregator(size_t num_nodes, std::vector<size_t> layer_dims,
                     Rng& rng);

  ag::Variable Aggregate(const std::shared_ptr<const CsrMatrix>& a_hat,
                         const std::vector<ag::Variable>& history,
                         const nn::ForwardContext& ctx) override;
  std::vector<ag::Variable> Parameters() const override;
  std::string name() const override { return "weighted"; }
  bool node_indexed() const override { return true; }

  /// The learned per-node contribution matrix C(l) (for analysis).
  const ag::Variable& contributions() const { return c_; }

 private:
  std::vector<size_t> layer_dims_;
  ag::Variable c_;  // N x l
  std::vector<ag::Variable> transforms_;  // W(il), i < l
};

/// Max-Pooling aggregator (§4.1.2): the special case of the weighted
/// aggregator where C(l) becomes a per-node, per-coordinate one-hot
/// selection — i.e., an elementwise max over the candidate terms of
/// Eq. 5 ({A_hat H(i) W(il)} for i < l, plus the current layer). The
/// selection itself is adaptive with *no additional parameters to
/// learn* (no C), and nothing is node-indexed, which is why this is the
/// one aggregator the paper can run inductively.
class MaxPoolingAggregator : public LayerAggregator {
 public:
  MaxPoolingAggregator(std::vector<size_t> layer_dims, Rng& rng);

  ag::Variable Aggregate(const std::shared_ptr<const CsrMatrix>& a_hat,
                         const std::vector<ag::Variable>& history,
                         const nn::ForwardContext& ctx) override;
  std::vector<ag::Variable> Parameters() const override;
  std::string name() const override { return "maxpool"; }
  bool node_indexed() const override { return false; }

 private:
  std::vector<size_t> layer_dims_;
  std::vector<ag::Variable> transforms_;  // W(il), i < l
};

/// Stochastic aggregator (§4.1.3, Eq. 6): the form of Eq. 5 where each
/// C entry is an independent Bernoulli draw,
///   C_ij ~ Bernoulli(exp(P_ij) / max_j exp(P_ij)),
/// with trainable probabilities P (straight-through gradients). At eval
/// time the expectation (the probability itself) is used. Layers share
/// the global P in R^{N x (L-1)}; instance `layer_index` reads columns
/// 0..layer_index.
class StochasticAggregator : public LayerAggregator {
 public:
  StochasticAggregator(ag::Variable shared_p, size_t layer_index,
                       std::vector<size_t> layer_dims, Rng& rng);

  ag::Variable Aggregate(const std::shared_ptr<const CsrMatrix>& a_hat,
                         const std::vector<ag::Variable>& history,
                         const nn::ForwardContext& ctx) override;
  std::vector<ag::Variable> Parameters() const override;
  std::string name() const override { return "stochastic"; }
  bool node_indexed() const override { return true; }

 private:
  ag::Variable p_;  // shared N x (L-1)
  size_t layer_index_;
  std::vector<size_t> layer_dims_;
  std::vector<ag::Variable> transforms_;
};

/// Mean aggregator: uniform average of cross-layer GC transformations —
/// the simple non-node-aware custom aggregator the paper mentions as an
/// alternative; used by tests and the custom-aggregator example as the
/// extensibility baseline.
class MeanAggregator : public LayerAggregator {
 public:
  MeanAggregator(std::vector<size_t> layer_dims, Rng& rng);

  ag::Variable Aggregate(const std::shared_ptr<const CsrMatrix>& a_hat,
                         const std::vector<ag::Variable>& history,
                         const nn::ForwardContext& ctx) override;
  std::vector<ag::Variable> Parameters() const override;
  std::string name() const override { return "mean"; }
  bool node_indexed() const override { return false; }

 private:
  std::vector<size_t> layer_dims_;
  std::vector<ag::Variable> transforms_;
};

/// Builds the aggregator for layer position `layer_index` (1-based count
/// of available history entries == layer_dims.size()). `shared_p` is
/// only consulted for the stochastic kind.
std::unique_ptr<LayerAggregator> MakeAggregator(
    AggregatorKind kind, size_t num_nodes, size_t layer_index,
    std::vector<size_t> layer_dims, ag::Variable shared_p, Rng& rng);

}  // namespace lasagne

#endif  // LASAGNE_CORE_AGGREGATORS_H_
