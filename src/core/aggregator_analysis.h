#ifndef LASAGNE_CORE_AGGREGATOR_ANALYSIS_H_
#define LASAGNE_CORE_AGGREGATOR_ANALYSIS_H_

#include <string>
#include <vector>

#include "core/lasagne_model.h"
#include "data/dataset.h"

namespace lasagne {

/// Interpretability report for a trained Lasagne model's node-aware
/// aggregation — the analysis the paper performs manually in §5.2.2
/// (P distributions of the most/least central node) and names as future
/// work ("how to make them interpretable"), packaged as an API.
struct AggregatorReport {
  /// Aggregator kind analyzed ("stochastic" gate probabilities or
  /// "weighted" contribution magnitudes).
  std::string aggregator;
  size_t num_layers = 0;

  /// Per-layer mean gate/contribution over all nodes.
  std::vector<double> mean_per_layer;

  /// Spearman correlation between PageRank and each node's preference
  /// for early layers (first-layer minus last-layer gate). Positive =
  /// central nodes prefer nearby hops (the paper's hub hypothesis).
  double pagerank_early_preference_spearman = 0.0;

  /// Mean early-layer preference of the top-decile PageRank nodes
  /// ("central") and bottom-decile nodes ("peripheral").
  double central_early_preference = 0.0;
  double peripheral_early_preference = 0.0;

  /// Gate rows of the single most and least central node (the paper's
  /// §5.2.2 anecdote, reproducibly).
  std::vector<double> most_central_gates;
  std::vector<double> least_central_gates;

  /// Human-readable multi-line summary.
  std::string Summary() const;
};

/// Builds the report from a trained model. Supported aggregators:
/// stochastic (gate probabilities) and weighted (|C| of the last hidden
/// layer, column-normalized). Aborts for aggregators without node-
/// indexed state (max pooling / mean / lstm have nothing to tabulate).
AggregatorReport AnalyzeAggregator(const LasagneModel& model,
                                   const Dataset& data);

}  // namespace lasagne

#endif  // LASAGNE_CORE_AGGREGATOR_ANALYSIS_H_
