#ifndef LASAGNE_CORE_GCFM_H_
#define LASAGNE_CORE_GCFM_H_

#include <memory>
#include <vector>

#include "autograd/fm_op.h"
#include "autograd/ops.h"
#include "autograd/variable.h"
#include "sparse/csr_matrix.h"
#include "tensor/rng.h"

namespace lasagne {

/// GC-FM layer (paper §4.2, Eq. 7 and Fig. 4).
///
/// The last layer of Lasagne: concatenates every hidden layer's
/// representation per node, computes per-class scores that combine a
/// linear term with pairwise factorized interactions *between different
/// layers' embeddings*, then applies the localized spectral filter
/// A_hat and a ReLU:
///   H(L) = ReLU(A_hat O),   O = linear(x) + cross-layer FM(x).
///
/// The layer owns W in R^{M x F} and the FM factors V in R^{M x F*k}
/// where M = sum of hidden dims and k is the FM latent rank.
class GcFmLayer {
 public:
  /// `layer_dims[i]` is the width of hidden layer i+1 (the FM fields).
  GcFmLayer(std::vector<size_t> layer_dims, size_t num_classes,
            size_t fm_rank, Rng& rng, bool final_relu = false);

  /// `hidden`: the L-1 hidden representations; sizes must match
  /// layer_dims.
  ag::Variable Forward(const std::shared_ptr<const CsrMatrix>& a_hat,
                       const std::vector<ag::Variable>& hidden) const;

  std::vector<ag::Variable> Parameters() const { return {w_, v_}; }

 private:
  std::vector<size_t> field_offsets_;
  size_t fm_rank_;
  bool final_relu_;
  ag::Variable w_;  // M x F
  ag::Variable v_;  // M x F*k
};

}  // namespace lasagne

#endif  // LASAGNE_CORE_GCFM_H_
