#include "models/attention.h"

#include <cmath>

#include "common/check.h"
#include "graph/algorithms.h"

namespace lasagne {

GatModel::GatModel(const Dataset& data, const ModelConfig& config,
                   const char* name,
                   std::shared_ptr<const std::vector<float>> edge_bias)
    : Model(name, data), config_(config), edge_bias_(std::move(edge_bias)) {
  LASAGNE_CHECK_GE(config.depth, 1u);
  edges_ = ag::EdgeStructure::FromGraph(data.graph, /*add_self_loops=*/true);
  features_ = ag::MakeConstant(data.features);
  Rng rng(config.seed);
  for (size_t l = 0; l < config.depth; ++l) {
    const bool last = (l + 1 == config.depth);
    const size_t in_dim =
        l == 0 ? data.feature_dim() : config.hidden_dim * config.heads;
    if (last) {
      layers_.emplace_back(in_dim, data.num_classes, /*num_heads=*/1,
                           /*concat=*/false, rng);
    } else {
      layers_.emplace_back(in_dim, config.hidden_dim, config.heads,
                           /*concat=*/true, rng);
    }
  }
}

GatModel::GatModel(const Dataset& data, const ModelConfig& config)
    : GatModel(data, config, "GAT", nullptr) {}

ag::Variable GatModel::Forward(const nn::ForwardContext& ctx) {
  ClearHidden();
  ag::Variable h = features_;
  for (size_t l = 0; l < layers_.size(); ++l) {
    const bool last = (l + 1 == layers_.size());
    h = layers_[l].Forward(edges_, h, ctx, config_.dropout, edge_bias_);
    if (!last) h = ag::Relu(h);
    RecordHidden(h);
  }
  return h;
}

std::vector<ag::Variable> GatModel::Parameters() const {
  std::vector<ag::Variable> params;
  for (const auto& layer : layers_) {
    for (const auto& p : layer.Parameters()) params.push_back(p);
  }
  return params;
}

namespace {

// Per-edge log-structural prior from RWR fingerprints.
std::shared_ptr<const std::vector<float>> MakeStructuralBias(
    const Dataset& data) {
  CsrMatrix fingerprints =
      StructuralFingerprints(data.graph, /*hops=*/2, /*restart_prob=*/0.5,
                             /*row_cap=*/64);
  auto edges =
      ag::EdgeStructure::FromGraph(data.graph, /*add_self_loops=*/true);
  auto bias = std::make_shared<std::vector<float>>(edges->num_edges(), 0.0f);
  for (size_t i = 0; i < edges->num_nodes; ++i) {
    const float fanout =
        static_cast<float>(edges->row_ptr[i + 1] - edges->row_ptr[i]);
    for (size_t k = edges->row_ptr[i]; k < edges->row_ptr[i + 1]; ++k) {
      // log(score / uniform): zero for a structurally uninformative
      // neighbor, bounded by +-log(fanout); keeps the prior on the same
      // scale as the learned attention logits.
      const float score = fingerprints.At(i, edges->src[k]);
      (*bias)[k] = std::log(score * fanout + 1e-3f);
    }
  }
  return bias;
}

}  // namespace

AdsfModel::AdsfModel(const Dataset& data, const ModelConfig& config)
    : GatModel(data, config, "ADSF", MakeStructuralBias(data)) {}

}  // namespace lasagne
