#include "models/propagation.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "graph/algorithms.h"

namespace lasagne {

// ---------------------------------------------------------------------------
// NGCN
// ---------------------------------------------------------------------------

NgcnModel::NgcnModel(const Dataset& data, const ModelConfig& config)
    : Model("NGCN", data), config_(config) {
  auto walk = std::make_shared<CsrMatrix>(data.graph.RandomWalkAdjacency());
  powers_.push_back(
      std::make_shared<CsrMatrix>(CsrMatrix::Identity(data.num_nodes())));
  powers_.push_back(walk);
  CsrMatrix running = *walk;
  for (size_t p = 2; p <= std::max<size_t>(config.power_k, 2); ++p) {
    running = running.Multiply(*walk, 1e-4f, /*row_cap=*/256);
    powers_.push_back(std::make_shared<CsrMatrix>(running));
  }
  features_ = ag::MakeConstant(data.features);
  Rng rng(config.seed);
  for (size_t p = 0; p < powers_.size(); ++p) {
    instances_.emplace_back(data.feature_dim(), config.hidden_dim, rng);
  }
  combiner_ = std::make_unique<nn::Linear>(
      powers_.size() * config.hidden_dim, data.num_classes, rng);
}

ag::Variable NgcnModel::Forward(const nn::ForwardContext& ctx) {
  ClearHidden();
  std::vector<ag::Variable> outs;
  for (size_t p = 0; p < powers_.size(); ++p) {
    outs.push_back(instances_[p].Forward(powers_[p], features_, ctx,
                                         config_.dropout, true));
  }
  ag::Variable cat = ag::ConcatCols(outs);
  RecordHidden(cat);
  LASAGNE_CHECK(ctx.rng != nullptr);
  cat = ag::Dropout(cat, config_.dropout, *ctx.rng, ctx.training);
  return combiner_->Forward(cat);
}

std::vector<ag::Variable> NgcnModel::Parameters() const {
  std::vector<ag::Variable> params;
  for (const auto& inst : instances_) {
    for (const auto& p : inst.Parameters()) params.push_back(p);
  }
  for (const auto& p : combiner_->Parameters()) params.push_back(p);
  return params;
}

// ---------------------------------------------------------------------------
// DGCN
// ---------------------------------------------------------------------------

DgcnModel::DgcnModel(const Dataset& data, const ModelConfig& config)
    : Model("DGCN", data), config_(config) {
  a_hat_ = std::make_shared<CsrMatrix>(data.graph.NormalizedAdjacency());
  Rng walk_rng(config.seed ^ 0x5eed);
  CsrMatrix ppmi = PpmiMatrix(data.graph, /*walks_per_node=*/4,
                              /*walk_length=*/8, /*window=*/2, walk_rng);
  // Symmetric normalization of the PPMI channel (add self loops so rows
  // are never empty).
  ppmi = ppmi.Add(CsrMatrix::Identity(data.num_nodes()));
  Tensor row_sums = ppmi.Multiply(Tensor::Ones(data.num_nodes(), 1));
  Tensor inv_sqrt(data.num_nodes(), 1);
  for (size_t i = 0; i < data.num_nodes(); ++i) {
    inv_sqrt(i, 0) = 1.0f / std::sqrt(std::max(row_sums(i, 0), 1e-6f));
  }
  ppmi_hat_ = std::make_shared<CsrMatrix>(
      ppmi.ScaleRowsCols(inv_sqrt, inv_sqrt));

  features_ = ag::MakeConstant(data.features);
  Rng rng(config.seed);
  for (size_t l = 0; l < config.depth; ++l) {
    const size_t in = l == 0 ? data.feature_dim() : config.hidden_dim;
    const size_t out =
        l + 1 == config.depth ? data.num_classes : config.hidden_dim;
    local_layers_.emplace_back(in, out, rng);
    global_layers_.emplace_back(in, out, rng);
  }
}

ag::Variable DgcnModel::ChannelForward(
    const nn::ForwardContext& ctx,
    const std::shared_ptr<const CsrMatrix>& op,
    const std::vector<nn::GraphConvolution>& conv) {
  ag::Variable h = features_;
  for (size_t l = 0; l < conv.size(); ++l) {
    const bool last = (l + 1 == conv.size());
    h = conv[l].Forward(op, h, ctx, config_.dropout, !last);
    RecordHidden(h);
  }
  return h;
}

ag::Variable DgcnModel::Forward(const nn::ForwardContext& ctx) {
  ClearHidden();
  ag::Variable za = ChannelForward(ctx, a_hat_, local_layers_);
  ag::Variable zp = ChannelForward(ctx, ppmi_hat_, global_layers_);
  return ag::ScalarMul(ag::Add(za, zp), 0.5f);
}

ag::Variable DgcnModel::TrainingLoss(const nn::ForwardContext& ctx) {
  ClearHidden();
  ag::Variable za = ChannelForward(ctx, a_hat_, local_layers_);
  ag::Variable zp = ChannelForward(ctx, ppmi_hat_, global_layers_);
  ag::Variable avg = ag::ScalarMul(ag::Add(za, zp), 0.5f);
  ag::Variable ce =
      ag::SoftmaxCrossEntropy(avg, data_.labels, data_.train_mask);
  // Consistency regularizer between the local and global channels.
  ag::Variable diff = ag::Sub(za, zp);
  ag::Variable align = ag::ScalarMul(
      ag::SquaredSum(diff),
      0.1f / static_cast<float>(diff->value().size()));
  return ag::Add(ce, align);
}

std::vector<ag::Variable> DgcnModel::Parameters() const {
  std::vector<ag::Variable> params;
  for (const auto& layer : local_layers_) {
    for (const auto& p : layer.Parameters()) params.push_back(p);
  }
  for (const auto& layer : global_layers_) {
    for (const auto& p : layer.Parameters()) params.push_back(p);
  }
  return params;
}

// ---------------------------------------------------------------------------
// GPNN
// ---------------------------------------------------------------------------

GpnnModel::GpnnModel(const Dataset& data, const ModelConfig& config)
    : Model("GPNN", data), config_(config) {
  Rng part_rng(config.seed ^ 0x6a11);
  auto parts = PartitionGraph(data.graph, config.num_partitions, part_rng);
  std::vector<uint32_t> part_of(data.num_nodes(), 0);
  for (uint32_t p = 0; p < parts.size(); ++p) {
    for (uint32_t u : parts[p]) part_of[u] = p;
  }
  // Intra-partition edges only, then GCN-normalize that subgraph.
  std::vector<std::pair<uint32_t, uint32_t>> intra_edges;
  for (const auto& [u, v] : data.graph.Edges()) {
    if (part_of[u] == part_of[v]) intra_edges.emplace_back(u, v);
  }
  Graph intra = Graph::FromEdges(data.num_nodes(), intra_edges);
  intra_op_ = std::make_shared<CsrMatrix>(intra.NormalizedAdjacency());
  global_op_ = std::make_shared<CsrMatrix>(data.graph.NormalizedAdjacency());

  features_ = ag::MakeConstant(data.features);
  Rng rng(config.seed);
  for (size_t l = 0; l < config.depth; ++l) {
    const size_t in = l == 0 ? data.feature_dim() : config.hidden_dim;
    const size_t out =
        l + 1 == config.depth ? data.num_classes : config.hidden_dim;
    layers_.emplace_back(in, out, rng);
  }
}

ag::Variable GpnnModel::Forward(const nn::ForwardContext& ctx) {
  ClearHidden();
  ag::Variable h = features_;
  for (size_t l = 0; l < layers_.size(); ++l) {
    const bool last = (l + 1 == layers_.size());
    // Schedule: intra-partition propagation on even layers, global
    // synchronization on odd layers (and always on the output layer).
    const auto& op = (l % 2 == 0 && !last) ? intra_op_ : global_op_;
    h = layers_[l].Forward(op, h, ctx, config_.dropout, !last);
    RecordHidden(h);
  }
  return h;
}

std::vector<ag::Variable> GpnnModel::Parameters() const {
  std::vector<ag::Variable> params;
  for (const auto& layer : layers_) {
    for (const auto& p : layer.Parameters()) params.push_back(p);
  }
  return params;
}

// ---------------------------------------------------------------------------
// LGCN
// ---------------------------------------------------------------------------

namespace {

// Per coordinate, mean of the k largest neighbor values (ranked
// aggregation from LGCN).
Tensor TopKNeighborAggregate(const Dataset& data, size_t k) {
  const size_t n = data.num_nodes();
  const size_t d = data.feature_dim();
  Tensor out(n, d);
  std::vector<float> values;
  for (uint32_t u = 0; u < n; ++u) {
    const size_t deg = data.graph.Degree(u);
    if (deg == 0) continue;
    float* out_row = out.RowPtr(u);
    for (size_t j = 0; j < d; ++j) {
      values.clear();
      for (const uint32_t* it = data.graph.NeighborsBegin(u);
           it != data.graph.NeighborsEnd(u); ++it) {
        values.push_back(data.features(*it, j));
      }
      const size_t take = std::min(k, values.size());
      std::partial_sort(values.begin(), values.begin() + take, values.end(),
                        std::greater<float>());
      double acc = 0.0;
      for (size_t t = 0; t < take; ++t) acc += values[t];
      out_row[j] = static_cast<float>(acc / static_cast<double>(take));
    }
  }
  return out;
}

}  // namespace

LgcnModel::LgcnModel(const Dataset& data, const ModelConfig& config)
    : Model("LGCN", data), config_(config) {
  Tensor ranked = TopKNeighborAggregate(data, config.lgcn_topk);
  // The paper's LGCN applies its ranked convolutions on top of an
  // initial graph-embedding layer; a propagated-feature channel is the
  // parameter-free stand-in for that layer.
  Tensor propagated =
      data.graph.NormalizedAdjacency().Multiply(data.features);
  const size_t d = data.feature_dim();
  Tensor augmented(data.num_nodes(), 3 * d);
  for (size_t i = 0; i < data.num_nodes(); ++i) {
    std::copy(data.features.RowPtr(i), data.features.RowPtr(i) + d,
              augmented.RowPtr(i));
    std::copy(ranked.RowPtr(i), ranked.RowPtr(i) + d,
              augmented.RowPtr(i) + d);
    std::copy(propagated.RowPtr(i), propagated.RowPtr(i) + d,
              augmented.RowPtr(i) + 2 * d);
  }
  augmented_ = ag::MakeConstant(std::move(augmented));
  Rng rng(config.seed);
  mlp1_ = std::make_unique<nn::Linear>(3 * d, config.hidden_dim, rng);
  mlp2_ = std::make_unique<nn::Linear>(config.hidden_dim,
                                       data.num_classes, rng);
}

ag::Variable LgcnModel::Forward(const nn::ForwardContext& ctx) {
  ClearHidden();
  LASAGNE_CHECK(ctx.rng != nullptr);
  ag::Variable h =
      ag::Dropout(augmented_, config_.dropout, *ctx.rng, ctx.training);
  h = ag::Relu(mlp1_->Forward(h));
  RecordHidden(h);
  h = ag::Dropout(h, config_.dropout, *ctx.rng, ctx.training);
  return mlp2_->Forward(h);
}

std::vector<ag::Variable> LgcnModel::Parameters() const {
  std::vector<ag::Variable> params = mlp1_->Parameters();
  for (const auto& p : mlp2_->Parameters()) params.push_back(p);
  return params;
}

}  // namespace lasagne
