#include <algorithm>
#include <memory>
#include <string>

#include "common/check.h"
#include "common/status.h"
#include "core/lasagne_model.h"
#include "models/attention.h"
#include "models/gcn_family.h"
#include "models/model.h"
#include "models/propagation.h"
#include "models/sampling_models.h"

namespace lasagne {
namespace {

/// Constructs a model for a validated (name, config); the registry
/// switch proper. Returns nullptr only for names missing from
/// KnownModelNames(), which ValidateModelConfig rules out first.
std::unique_ptr<Model> MakeModelImpl(const std::string& name,
                                     const Dataset& data,
                                     const ModelConfig& config) {
  if (name == "gcn") return std::make_unique<GcnModel>(data, config);
  if (name == "resgcn") return std::make_unique<ResGcnModel>(data, config);
  if (name == "densegcn") {
    return std::make_unique<DenseGcnModel>(data, config);
  }
  if (name == "jknet") return std::make_unique<JkNetModel>(data, config);
  if (name == "jknet-maxpool") {
    return std::make_unique<JkNetModel>(data, config,
                                        JkNetModel::Mode::kMaxPool);
  }
  if (name == "jknet-lstm") {
    return std::make_unique<JkNetModel>(data, config,
                                        JkNetModel::Mode::kLstmAttention);
  }
  if (name == "sgc") return std::make_unique<SgcModel>(data, config);
  if (name == "gat") return std::make_unique<GatModel>(data, config);
  if (name == "appnp") return std::make_unique<AppnpModel>(data, config);
  if (name == "mixhop") return std::make_unique<MixHopModel>(data, config);
  if (name == "gin") return std::make_unique<GinModel>(data, config);
  if (name == "dropedge") {
    return std::make_unique<DropEdgeGcnModel>(data, config);
  }
  if (name == "pairnorm") {
    return std::make_unique<PairNormGcnModel>(data, config);
  }
  if (name == "madreg") {
    return std::make_unique<MadRegGcnModel>(data, config);
  }
  if (name == "stgcn") return std::make_unique<SnowballModel>(data, config);
  if (name == "ngcn") return std::make_unique<NgcnModel>(data, config);
  if (name == "dgcn") return std::make_unique<DgcnModel>(data, config);
  if (name == "gpnn") return std::make_unique<GpnnModel>(data, config);
  if (name == "lgcn") return std::make_unique<LgcnModel>(data, config);
  if (name == "adsf") return std::make_unique<AdsfModel>(data, config);
  if (name == "graphsage") {
    return std::make_unique<GraphSageModel>(data, config);
  }
  if (name == "fastgcn") {
    return std::make_unique<FastGcnModel>(data, config);
  }
  if (name == "clustergcn") {
    return std::make_unique<ClusterGcnModel>(data, config);
  }
  if (name == "graphsaint") {
    return std::make_unique<GraphSaintModel>(data, config);
  }

  auto lasagne_variant = [&](AggregatorKind kind, BaseConv base,
                             bool use_gcfm) {
    return std::make_unique<LasagneModel>(
        data, LasagneConfigFrom(config, kind, base, use_gcfm));
  };
  if (name == "lasagne-weighted") {
    return lasagne_variant(AggregatorKind::kWeighted, BaseConv::kGcn, true);
  }
  if (name == "lasagne-stochastic") {
    return lasagne_variant(AggregatorKind::kStochastic, BaseConv::kGcn,
                           true);
  }
  if (name == "lasagne-maxpool") {
    return lasagne_variant(AggregatorKind::kMaxPooling, BaseConv::kGcn,
                           true);
  }
  if (name == "lasagne-mean") {
    return lasagne_variant(AggregatorKind::kMean, BaseConv::kGcn, true);
  }
  if (name == "lasagne-lstm") {
    return lasagne_variant(AggregatorKind::kLstm, BaseConv::kGcn, true);
  }
  if (name == "lasagne-weighted-nofm") {
    return lasagne_variant(AggregatorKind::kWeighted, BaseConv::kGcn,
                           false);
  }
  if (name == "lasagne-stochastic-nofm") {
    return lasagne_variant(AggregatorKind::kStochastic, BaseConv::kGcn,
                           false);
  }
  if (name == "lasagne-maxpool-nofm") {
    return lasagne_variant(AggregatorKind::kMaxPooling, BaseConv::kGcn,
                           false);
  }
  if (name == "lasagne-stochastic-sgc") {
    return lasagne_variant(AggregatorKind::kStochastic, BaseConv::kSgc,
                           true);
  }
  if (name == "lasagne-stochastic-gat") {
    return lasagne_variant(AggregatorKind::kStochastic, BaseConv::kGat,
                           true);
  }
  return nullptr;
}

}  // namespace

Status ValidateModelConfig(const std::string& name, const Dataset& data,
                           const ModelConfig& config) {
  const std::vector<std::string> known = KnownModelNames();
  if (std::find(known.begin(), known.end(), name) == known.end()) {
    return NotFoundError("unknown model name: " + name);
  }
  if (data.num_nodes() == 0) {
    return InvalidArgumentError("dataset is empty");
  }
  if (data.num_classes == 0) {
    return InvalidArgumentError("dataset has no classes");
  }
  if (data.feature_dim() == 0) {
    return InvalidArgumentError("dataset has no features");
  }
  if (config.depth == 0) {
    return InvalidArgumentError("depth must be at least 1");
  }
  if (config.hidden_dim == 0) {
    return InvalidArgumentError("hidden_dim must be at least 1");
  }
  if (!(config.dropout >= 0.0f && config.dropout < 1.0f)) {
    return InvalidArgumentError("dropout must be in [0, 1), got " +
                                std::to_string(config.dropout));
  }
  if (name == "gat" && config.heads == 0) {
    return InvalidArgumentError("gat needs at least one attention head");
  }
  if (name == "appnp" && config.appnp_iterations == 0) {
    return InvalidArgumentError("appnp needs at least one power iteration");
  }
  if ((name == "sgc" || name == "mixhop" || name == "ngcn") &&
      config.power_k == 0) {
    return InvalidArgumentError(name + " needs power_k >= 1");
  }
  if ((name == "clustergcn" || name == "gpnn") &&
      config.num_partitions == 0) {
    return InvalidArgumentError(name + " needs at least one partition");
  }
  return Status::OK();
}

StatusOr<std::unique_ptr<Model>> TryMakeModel(const std::string& name,
                                              const Dataset& data,
                                              const ModelConfig& config) {
  LASAGNE_RETURN_IF_ERROR(ValidateModelConfig(name, data, config));
  std::unique_ptr<Model> model = MakeModelImpl(name, data, config);
  if (model == nullptr) {
    return InternalError("validated model name '" + name +
                         "' missing from the factory switch");
  }
  return model;
}

std::unique_ptr<Model> MakeModel(const std::string& name,
                                 const Dataset& data,
                                 const ModelConfig& config) {
  StatusOr<std::unique_ptr<Model>> model = TryMakeModel(name, data, config);
  LASAGNE_CHECK_MSG(model.ok(), model.status().ToString());
  return std::move(model).value();
}

std::vector<std::string> KnownModelNames() {
  return {"gcn",
          "resgcn",
          "densegcn",
          "jknet",
          "jknet-maxpool",
          "jknet-lstm",
          "sgc",
          "gat",
          "appnp",
          "mixhop",
          "gin",
          "dropedge",
          "pairnorm",
          "madreg",
          "stgcn",
          "ngcn",
          "dgcn",
          "gpnn",
          "lgcn",
          "adsf",
          "graphsage",
          "fastgcn",
          "clustergcn",
          "graphsaint",
          "lasagne-weighted",
          "lasagne-stochastic",
          "lasagne-maxpool",
          "lasagne-mean",
          "lasagne-lstm",
          "lasagne-weighted-nofm",
          "lasagne-stochastic-nofm",
          "lasagne-maxpool-nofm",
          "lasagne-stochastic-sgc",
          "lasagne-stochastic-gat"};
}

}  // namespace lasagne
