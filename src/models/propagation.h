#ifndef LASAGNE_MODELS_PROPAGATION_H_
#define LASAGNE_MODELS_PROPAGATION_H_

#include <memory>
#include <vector>

#include "models/model.h"
#include "nn/layers.h"

namespace lasagne {

/// NGCN (Abu-El-Haija et al., 2018): trains GCN instances over random
/// walk powers A_rw^p (p = 0..power_k) and learns a combination of the
/// instance outputs via a linear classifier on their concatenation.
class NgcnModel : public Model {
 public:
  NgcnModel(const Dataset& data, const ModelConfig& config);
  ag::Variable Forward(const nn::ForwardContext& ctx) override;
  std::vector<ag::Variable> Parameters() const override;

 private:
  ModelConfig config_;
  std::vector<std::shared_ptr<const CsrMatrix>> powers_;
  ag::Variable features_;
  std::vector<nn::GraphConvolution> instances_;
  std::unique_ptr<nn::Linear> combiner_;
};

/// DGCN (Zhuang & Ma, WWW'18): dual channels — one GCN over the
/// normalized adjacency (local consistency) and one over a normalized
/// random-walk PPMI matrix (global consistency) — whose predictions are
/// averaged; training adds an alignment regularizer between the two.
class DgcnModel : public Model {
 public:
  DgcnModel(const Dataset& data, const ModelConfig& config);
  ag::Variable Forward(const nn::ForwardContext& ctx) override;
  ag::Variable TrainingLoss(const nn::ForwardContext& ctx) override;
  std::vector<ag::Variable> Parameters() const override;

 private:
  ag::Variable ChannelForward(const nn::ForwardContext& ctx,
                              const std::shared_ptr<const CsrMatrix>& op,
                              const std::vector<nn::GraphConvolution>& conv);

  ModelConfig config_;
  std::shared_ptr<const CsrMatrix> a_hat_;
  std::shared_ptr<const CsrMatrix> ppmi_hat_;
  ag::Variable features_;
  std::vector<nn::GraphConvolution> local_layers_;
  std::vector<nn::GraphConvolution> global_layers_;
};

/// GPNN (Liao et al., 2018), simplified: graph partition neural network
/// whose propagation schedule alternates intra-partition steps (a
/// block-diagonal cut of A_hat) with global synchronization steps (full
/// A_hat), approximating the paper's synchronous/sequential schedules.
class GpnnModel : public Model {
 public:
  GpnnModel(const Dataset& data, const ModelConfig& config);
  ag::Variable Forward(const nn::ForwardContext& ctx) override;
  std::vector<ag::Variable> Parameters() const override;

 private:
  ModelConfig config_;
  std::shared_ptr<const CsrMatrix> intra_op_;   // partition-internal edges
  std::shared_ptr<const CsrMatrix> global_op_;  // full A_hat
  ag::Variable features_;
  std::vector<nn::GraphConvolution> layers_;
};

/// LGCN (Gao et al., KDD'18), simplified: the learnable graph
/// convolution's top-k ranked neighbor aggregation is computed per
/// feature coordinate as a fixed preprocessing step; a trainable MLP
/// consumes [X || topk(X) || A_hat X] (the third channel standing in
/// for the paper's initial graph-embedding layer). Preserves the
/// ranked-aggregation mechanism without the 1-D convolution plumbing.
class LgcnModel : public Model {
 public:
  LgcnModel(const Dataset& data, const ModelConfig& config);
  ag::Variable Forward(const nn::ForwardContext& ctx) override;
  std::vector<ag::Variable> Parameters() const override;

 private:
  ModelConfig config_;
  ag::Variable augmented_;  // constant [X || ranked-topk aggregate]
  std::unique_ptr<nn::Linear> mlp1_;
  std::unique_ptr<nn::Linear> mlp2_;
};

}  // namespace lasagne

#endif  // LASAGNE_MODELS_PROPAGATION_H_
