#include "models/model.h"

#include <atomic>
#include <cstdlib>
#include <utility>

#include "autograd/inference.h"
#include "infer/plan.h"

namespace lasagne {

namespace {

bool EnvDisables(const char* name) {
  const char* env = std::getenv(name);
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

bool PlanDefaultFromEnv() { return !EnvDisables("LASAGNE_DISABLE_PLAN"); }

bool FusionDefaultFromEnv() { return !EnvDisables("LASAGNE_DISABLE_FUSION"); }

std::atomic<bool>& PlanDefaultFlag() {
  static std::atomic<bool> flag{PlanDefaultFromEnv()};
  return flag;
}

std::atomic<bool>& FusionDefaultFlag() {
  static std::atomic<bool> flag{FusionDefaultFromEnv()};
  return flag;
}

}  // namespace

Model::Model(std::string name, const Dataset& data)
    : name_(std::move(name)), data_(data) {}

Model::~Model() = default;

void Model::SetExecutionPlanDefault(bool enabled) {
  PlanDefaultFlag().store(enabled, std::memory_order_relaxed);
}

bool Model::ExecutionPlanDefault() {
  return PlanDefaultFlag().load(std::memory_order_relaxed);
}

void Model::SetPlanFusionDefault(bool enabled) {
  FusionDefaultFlag().store(enabled, std::memory_order_relaxed);
}

bool Model::PlanFusionDefault() {
  return FusionDefaultFlag().load(std::memory_order_relaxed);
}

void Model::ReloadEnvDefaults() {
  PlanDefaultFlag().store(PlanDefaultFromEnv(), std::memory_order_relaxed);
  FusionDefaultFlag().store(FusionDefaultFromEnv(),
                            std::memory_order_relaxed);
}

void Model::InvalidateExecutionPlan() {
  plan_.reset();
  plan_status_ = Status::OK();
  plan_compile_failed_ = false;
}

bool Model::EnsureExecutionPlan() {
  if (plan_ != nullptr) return true;
  if (plan_compile_failed_) return false;
  StatusOr<std::unique_ptr<infer::ExecutionPlan>> compiled =
      infer::ExecutionPlan::Compile(*this, use_plan_fusion_);
  if (!compiled.ok()) {
    plan_status_ = compiled.status();
    plan_compile_failed_ = true;
    return false;
  }
  plan_ = std::move(compiled).value();
  plan_status_ = Status::OK();
  return true;
}

ag::Variable Model::TrainingLoss(const nn::ForwardContext& ctx) {
  ag::Variable logits = Forward(ctx);
  return ag::SoftmaxCrossEntropy(logits, data_.labels, data_.train_mask);
}

Tensor Model::Predict(const nn::ForwardContext& ctx) {
  if (!ctx.training && use_execution_plan_ && EnsureExecutionPlan()) {
    // Flat interpreter over the pre-reserved workspace: no Forward
    // walk, no tape, no pool traffic. Returns a copy of the plan's
    // persistent output buffer.
    return plan_->Run();
  }
  ag::NoGradGuard guard;
  ag::Variable logits = Forward(ctx);
  // Inference-mode nodes retain no children, so when this handle is
  // the only owner the value can be moved out instead of copied. A
  // model returning a cached member node keeps its tensor intact.
  if (logits.use_count() == 1) return std::move(logits->mutable_value());
  return logits->value();
}

}  // namespace lasagne
