#include "models/model.h"

namespace lasagne {

ag::Variable Model::TrainingLoss(const nn::ForwardContext& ctx) {
  ag::Variable logits = Forward(ctx);
  return ag::SoftmaxCrossEntropy(logits, data_.labels, data_.train_mask);
}

}  // namespace lasagne
