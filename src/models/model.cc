#include "models/model.h"

#include "autograd/inference.h"

namespace lasagne {

ag::Variable Model::TrainingLoss(const nn::ForwardContext& ctx) {
  ag::Variable logits = Forward(ctx);
  return ag::SoftmaxCrossEntropy(logits, data_.labels, data_.train_mask);
}

Tensor Model::Predict(const nn::ForwardContext& ctx) {
  ag::NoGradGuard guard;
  ag::Variable logits = Forward(ctx);
  // Inference-mode nodes retain no children, so when this handle is
  // the only owner the value can be moved out instead of copied. A
  // model returning a cached member node keeps its tensor intact.
  if (logits.use_count() == 1) return std::move(logits->mutable_value());
  return logits->value();
}

}  // namespace lasagne
