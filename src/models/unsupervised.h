#ifndef LASAGNE_MODELS_UNSUPERVISED_H_
#define LASAGNE_MODELS_UNSUPERVISED_H_

#include "data/dataset.h"
#include "models/model.h"
#include "train/trainer.h"

namespace lasagne {

/// Result of an unsupervised-pretrain + linear-probe pipeline.
struct UnsupervisedResult {
  double test_accuracy = 0.0;
  double val_accuracy = 0.0;
  double pretrain_loss = 0.0;
};

/// DGI (Velickovic et al., ICLR'19): a GCN encoder is pretrained to
/// maximize mutual information between patch representations and a
/// global summary (readout) via a bilinear discriminator against
/// corrupted (feature-shuffled) graphs; node classification is then a
/// logistic-regression probe on the frozen embeddings.
UnsupervisedResult RunDgi(const Dataset& data, const ModelConfig& config,
                          const TrainOptions& options);

/// GMI (Peng et al., WWW'20), simplified: the encoder maximizes (a)
/// feature MI — a bilinear discriminator between each node's embedding
/// and its own raw features versus shuffled features — and (b) edge MI —
/// embedding agreement on edges versus random pairs. Same probe
/// protocol as DGI.
UnsupervisedResult RunGmi(const Dataset& data, const ModelConfig& config,
                          const TrainOptions& options);

}  // namespace lasagne

#endif  // LASAGNE_MODELS_UNSUPERVISED_H_
