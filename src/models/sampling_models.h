#ifndef LASAGNE_MODELS_SAMPLING_MODELS_H_
#define LASAGNE_MODELS_SAMPLING_MODELS_H_

#include <memory>
#include <vector>

#include "models/model.h"
#include "nn/layers.h"

namespace lasagne {

/// Shared plumbing for methods that train on a (sampled view of the)
/// training graph and evaluate full-graph: on inductive datasets the
/// training view is the subgraph induced by train nodes, exactly as in
/// the paper's Flickr/Reddit protocol.
class SampledTrainingModel : public Model {
 public:
  SampledTrainingModel(const char* name, const Dataset& data);

 protected:
  /// The dataset training happens on (== data_ when transductive).
  const Dataset& train_view() const {
    return train_view_ ? *train_view_ : data_;
  }

 private:
  std::unique_ptr<Dataset> train_view_;  // set only for inductive data
};

/// GraphSAGE (Hamilton et al., NIPS'17) with the mean aggregator:
/// h' = ReLU(W_self h + W_neigh mean_{sampled neighbors} h). Training
/// resamples `sage_fanout` neighbors per node each step.
class GraphSageModel : public SampledTrainingModel {
 public:
  GraphSageModel(const Dataset& data, const ModelConfig& config);
  ag::Variable Forward(const nn::ForwardContext& ctx) override;
  ag::Variable TrainingLoss(const nn::ForwardContext& ctx) override;
  std::vector<ag::Variable> Parameters() const override;

 private:
  ag::Variable ForwardOn(const Dataset& view,
                         const std::shared_ptr<const CsrMatrix>& op,
                         const ag::Variable& features,
                         const nn::ForwardContext& ctx);

  ModelConfig config_;
  std::shared_ptr<const CsrMatrix> full_op_;  // eval operator (full graph)
  ag::Variable features_;
  ag::Variable train_features_;
  std::vector<nn::Linear> self_weights_;
  std::vector<nn::Linear> neighbor_weights_;
};

/// FastGCN (Chen et al., ICLR'18): GCN trained with per-layer importance
/// sampled propagation operators; full-graph inference.
class FastGcnModel : public SampledTrainingModel {
 public:
  FastGcnModel(const Dataset& data, const ModelConfig& config);
  ag::Variable Forward(const nn::ForwardContext& ctx) override;
  ag::Variable TrainingLoss(const nn::ForwardContext& ctx) override;
  std::vector<ag::Variable> Parameters() const override;

 private:
  ag::Variable ForwardWithOps(
      const std::vector<std::shared_ptr<const CsrMatrix>>& ops,
      const ag::Variable& features, const nn::ForwardContext& ctx);

  ModelConfig config_;
  std::shared_ptr<const CsrMatrix> full_a_hat_;   // eval (full graph)
  std::shared_ptr<const CsrMatrix> train_a_hat_;  // sampled from this
  ag::Variable features_;
  ag::Variable train_features_;
  std::vector<nn::GraphConvolution> layers_;
};

/// ClusterGCN (Chiang et al., KDD'19): the graph is partitioned once;
/// each training step runs a GCN restricted to one randomly chosen
/// partition (locally re-normalized), eliminating neighborhood
/// expansion. Full-graph inference.
class ClusterGcnModel : public SampledTrainingModel {
 public:
  ClusterGcnModel(const Dataset& data, const ModelConfig& config);
  ag::Variable Forward(const nn::ForwardContext& ctx) override;
  ag::Variable TrainingLoss(const nn::ForwardContext& ctx) override;
  std::vector<ag::Variable> Parameters() const override;

 private:
  ModelConfig config_;
  std::shared_ptr<const CsrMatrix> full_a_hat_;
  ag::Variable features_;
  std::vector<nn::GraphConvolution> layers_;
  // Per-partition precomputed pieces (on the training view).
  struct Partition {
    std::vector<uint32_t> nodes;
    std::shared_ptr<const CsrMatrix> a_hat;
    ag::Variable features;
    std::vector<int32_t> labels;
    std::vector<float> train_mask;
  };
  std::vector<Partition> partitions_;
};

/// GraphSAINT (Zeng et al., ICLR'20) with the random-walk sampler: each
/// step trains on a sampled subgraph with inclusion-probability loss
/// normalization; full-graph inference.
class GraphSaintModel : public SampledTrainingModel {
 public:
  GraphSaintModel(const Dataset& data, const ModelConfig& config);
  ag::Variable Forward(const nn::ForwardContext& ctx) override;
  ag::Variable TrainingLoss(const nn::ForwardContext& ctx) override;
  std::vector<ag::Variable> Parameters() const override;

 private:
  ModelConfig config_;
  std::shared_ptr<const CsrMatrix> full_a_hat_;
  ag::Variable features_;
  std::vector<nn::GraphConvolution> layers_;
  std::vector<double> inclusion_probs_;  // on the training view
};

}  // namespace lasagne

#endif  // LASAGNE_MODELS_SAMPLING_MODELS_H_
