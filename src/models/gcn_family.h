#ifndef LASAGNE_MODELS_GCN_FAMILY_H_
#define LASAGNE_MODELS_GCN_FAMILY_H_

#include <memory>
#include <vector>

#include "models/model.h"
#include "nn/layers.h"

namespace lasagne {

class LstmCell;  // core/lstm_aggregator.h

/// Vanilla GCN (Kipf & Welling, ICLR'17), paper Eq. 2:
/// `H(l) = ReLU(A_hat H(l-1) W(l))`, softmax classifier on H(L).
class GcnModel : public Model {
 public:
  GcnModel(const Dataset& data, const ModelConfig& config);
  ag::Variable Forward(const nn::ForwardContext& ctx) override;
  std::vector<ag::Variable> Parameters() const override;

 protected:
  /// Shared forward skeleton with hooks for the Res/PairNorm variants.
  enum class Variant { kPlain, kResidual, kPairNorm };
  GcnModel(const Dataset& data, const ModelConfig& config, Variant variant,
           const char* name);

  ModelConfig config_;
  Variant variant_ = Variant::kPlain;
  std::shared_ptr<const CsrMatrix> a_hat_;
  ag::Variable features_;
  std::vector<nn::GraphConvolution> layers_;
};

/// ResGCN: GCN with identity skip connections between equal-width hidden
/// layers (He et al. residual blocks ported to GCN).
class ResGcnModel : public GcnModel {
 public:
  ResGcnModel(const Dataset& data, const ModelConfig& config);
};

/// PairNorm-GCN: GCN with a PairNorm layer after every hidden layer
/// (Zhao & Akoglu, ICLR'20).
class PairNormGcnModel : public GcnModel {
 public:
  PairNormGcnModel(const Dataset& data, const ModelConfig& config);
};

/// DenseGCN (Li et al., ICCV'19): layer l consumes the concatenation of
/// the input and every previous layer's output (DenseNet connectivity).
class DenseGcnModel : public Model {
 public:
  DenseGcnModel(const Dataset& data, const ModelConfig& config);
  ag::Variable Forward(const nn::ForwardContext& ctx) override;
  std::vector<ag::Variable> Parameters() const override;

 private:
  ModelConfig config_;
  std::shared_ptr<const CsrMatrix> a_hat_;
  ag::Variable features_;
  std::vector<nn::GraphConvolution> layers_;
  std::unique_ptr<nn::Linear> classifier_;
};

/// JK-Net (Xu et al., ICML'18): run L GC layers and combine every
/// layer's output before the classifier. The paper offers three
/// combination modes; all are implemented here (the Lasagne paper uses
/// concatenation "since it performs best on the citation dataset").
class JkNetModel : public Model {
 public:
  enum class Mode { kConcat, kMaxPool, kLstmAttention };

  JkNetModel(const Dataset& data, const ModelConfig& config,
             Mode mode = Mode::kConcat);
  ~JkNetModel() override;  // out-of-line: LstmCell is incomplete here
  ag::Variable Forward(const nn::ForwardContext& ctx) override;
  std::vector<ag::Variable> Parameters() const override;

 private:
  ModelConfig config_;
  Mode mode_;
  std::shared_ptr<const CsrMatrix> a_hat_;
  ag::Variable features_;
  std::vector<nn::GraphConvolution> layers_;
  std::unique_ptr<nn::Linear> classifier_;
  // LSTM-attention mode state (see core/lstm_aggregator.h).
  std::unique_ptr<LstmCell> lstm_cell_;
  ag::Variable lstm_attn_;
};

/// SGC (Wu et al., ICML'19): logits = (A_hat^K X) W. The propagated
/// features are precomputed once; only the linear map is trained.
class SgcModel : public Model {
 public:
  SgcModel(const Dataset& data, const ModelConfig& config);
  ag::Variable Forward(const nn::ForwardContext& ctx) override;
  std::vector<ag::Variable> Parameters() const override;

 private:
  ModelConfig config_;
  ag::Variable propagated_;  // constant A^K X
  std::unique_ptr<nn::Linear> classifier_;
};

/// APPNP (Klicpera et al., ICLR'19): an MLP produces Z0; personalized
/// PageRank propagation Z <- (1-alpha) A_hat Z + alpha Z0 runs for K
/// steps.
class AppnpModel : public Model {
 public:
  AppnpModel(const Dataset& data, const ModelConfig& config);
  ag::Variable Forward(const nn::ForwardContext& ctx) override;
  std::vector<ag::Variable> Parameters() const override;

 private:
  ModelConfig config_;
  std::shared_ptr<const CsrMatrix> a_hat_;
  ag::Variable features_;
  std::unique_ptr<nn::Linear> mlp1_;
  std::unique_ptr<nn::Linear> mlp2_;
};

/// MixHop (Abu-El-Haija et al., ICML'19): each layer concatenates
/// `A^p H W_p` for powers p in {0..power_k}.
class MixHopModel : public Model {
 public:
  MixHopModel(const Dataset& data, const ModelConfig& config);
  ag::Variable Forward(const nn::ForwardContext& ctx) override;
  std::vector<ag::Variable> Parameters() const override;

 private:
  ModelConfig config_;
  std::vector<std::shared_ptr<const CsrMatrix>> powers_;  // A^0..A^k
  ag::Variable features_;
  // layer_weights_[l][p]
  std::vector<std::vector<nn::GraphConvolution>> layer_weights_;
  std::unique_ptr<nn::Linear> classifier_;
};

/// GIN (Xu et al., ICLR'19): sum aggregation
/// `h = MLP((1 + eps) h + sum_neighbors h)`.
class GinModel : public Model {
 public:
  GinModel(const Dataset& data, const ModelConfig& config);
  ag::Variable Forward(const nn::ForwardContext& ctx) override;
  std::vector<ag::Variable> Parameters() const override;

 private:
  ModelConfig config_;
  std::shared_ptr<const CsrMatrix> sum_op_;  // A + (1 + eps) I
  ag::Variable features_;
  std::vector<nn::Linear> mlp_a_;
  std::vector<nn::Linear> mlp_b_;
};

/// Snowball / truncated-Krylov GCN in the spirit of STGCN (Luan et al.,
/// NeurIPS'19): layer l consumes the concatenation of all previous
/// outputs and propagates once; the classifier sees the full stack.
class SnowballModel : public Model {
 public:
  SnowballModel(const Dataset& data, const ModelConfig& config);
  ag::Variable Forward(const nn::ForwardContext& ctx) override;
  std::vector<ag::Variable> Parameters() const override;

 private:
  ModelConfig config_;
  std::shared_ptr<const CsrMatrix> a_hat_;
  ag::Variable features_;
  std::vector<nn::GraphConvolution> layers_;
  std::unique_ptr<nn::Linear> classifier_;
};

/// DropEdge (Rong et al., ICLR'20): a GCN whose propagation operator is
/// resampled per training step by dropping a fraction of edges.
class DropEdgeGcnModel : public Model {
 public:
  DropEdgeGcnModel(const Dataset& data, const ModelConfig& config);
  ag::Variable Forward(const nn::ForwardContext& ctx) override;
  std::vector<ag::Variable> Parameters() const override;

 private:
  ModelConfig config_;
  std::shared_ptr<const CsrMatrix> full_a_hat_;
  ag::Variable features_;
  std::vector<nn::GraphConvolution> layers_;
};

/// MADReg (Chen et al., AAAI'20): GCN plus a MADGap-based regularizer
/// that pushes neighbor pairs together and remote pairs apart.
class MadRegGcnModel : public GcnModel {
 public:
  MadRegGcnModel(const Dataset& data, const ModelConfig& config);
  ag::Variable TrainingLoss(const nn::ForwardContext& ctx) override;

 private:
  std::vector<std::pair<uint32_t, uint32_t>> neighbor_pairs_;
  std::vector<std::pair<uint32_t, uint32_t>> remote_pairs_;
};

}  // namespace lasagne

#endif  // LASAGNE_MODELS_GCN_FAMILY_H_
