#ifndef LASAGNE_MODELS_MODEL_H_
#define LASAGNE_MODELS_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "common/status.h"
#include "data/dataset.h"
#include "nn/layers.h"

namespace lasagne {

namespace infer {
class ExecutionPlan;
}

/// Hyper-parameters shared across the model zoo. Individual models read
/// the subset they understand.
struct ModelConfig {
  size_t depth = 2;        // number of graph-convolution layers
  size_t hidden_dim = 32;  // hidden width
  float dropout = 0.5f;
  size_t heads = 4;              // GAT attention heads
  float appnp_alpha = 0.1f;      // APPNP teleport probability
  size_t appnp_iterations = 10;  // APPNP power-iteration steps
  size_t power_k = 2;            // SGC / MixHop adjacency powers
  float drop_edge_rate = 0.3f;   // DropEdge keep-rate complement
  float pairnorm_scale = 1.0f;
  float madreg_weight = 0.05f;   // MADReg regularizer strength
  size_t madreg_pairs = 256;     // sampled pair count per MAD term
  size_t num_partitions = 8;     // ClusterGCN / GPNN
  size_t fastgcn_sample = 160;   // FastGCN per-layer sample size
  size_t saint_root_count = 48;  // GraphSAINT walk roots per subgraph
  size_t saint_walk_length = 3;
  size_t sage_fanout = 8;        // GraphSAGE neighbor samples
  size_t lgcn_topk = 4;          // LGCN ranked-aggregation k
  uint64_t seed = 1;
};

/// Common interface of every node classifier in the zoo.
///
/// A model is bound to a `Dataset` at construction (the caller must keep
/// the dataset alive for the model's lifetime). `Forward` produces
/// full-graph logits (N x C); `TrainingLoss` defaults to masked softmax
/// cross-entropy over the training mask but is overridden by sampling
/// methods (ClusterGCN, GraphSAINT, FastGCN, GraphSAGE) that train on
/// sampled or partitioned subgraphs, and by regularized methods (MADReg)
/// that add auxiliary terms.
class Model {
 public:
  // Ctor/dtor are out-of-line: Model owns a unique_ptr to the
  // incomplete infer::ExecutionPlan type.
  Model(std::string name, const Dataset& data);
  virtual ~Model();

  Model(const Model&) = delete;
  Model& operator=(const Model&) = delete;

  /// Full-graph logits (N x num_classes). Also refreshes
  /// `hidden_states()` with the post-activation output of every hidden
  /// graph-convolution layer (used by the mutual-information analysis).
  virtual ag::Variable Forward(const nn::ForwardContext& ctx) = 0;

  /// Differentiable training objective for one step.
  virtual ag::Variable TrainingLoss(const nn::ForwardContext& ctx);

  /// Forward-only logits, bitwise identical to Forward(ctx)->value().
  /// This is the evaluation / serving entry point (EvaluateAccuracy,
  /// infer::InferenceSession).
  ///
  /// When execution plans are enabled (the default; see
  /// SetExecutionPlanDefault and the LASAGNE_DISABLE_PLAN env var) the
  /// first eval-mode call compiles an infer::ExecutionPlan — a traced
  /// flat op list replayed through a pre-reserved workspace — and
  /// every later call interprets it, skipping the Forward re-walk and
  /// all BufferPool traffic (docs/INFERENCE.md). Models whose forward
  /// contains an op the plan compiler cannot replay fall back to the
  /// eager path below, permanently and silently (plan_status() says
  /// why). The eager path runs Forward under ag::NoGradGuard, so no
  /// autograd tape is built and every intermediate returns to the
  /// BufferPool as soon as its consumer has run.
  ///
  /// Note: a plan-served Predict does not refresh hidden_states()
  /// (the analysis path uses Forward directly).
  Tensor Predict(const nn::ForwardContext& ctx);

  /// Process-wide default for whether new Predict calls may compile
  /// and use execution plans. Initialized from the environment: set
  /// LASAGNE_DISABLE_PLAN to a non-empty value other than "0" to start
  /// disabled. Instance opt-out: set_use_execution_plan(false).
  static void SetExecutionPlanDefault(bool enabled);
  static bool ExecutionPlanDefault();

  /// Process-wide default for whether compiled plans run the op-chain
  /// fusion pass (docs/INFERENCE.md). Initialized from the
  /// environment: set LASAGNE_DISABLE_FUSION to a non-empty value
  /// other than "0" to start disabled. Instance opt-out:
  /// set_use_plan_fusion(false) — takes effect at the next compile
  /// (call InvalidateExecutionPlan() to force one).
  static void SetPlanFusionDefault(bool enabled);
  static bool PlanFusionDefault();

  /// Re-reads LASAGNE_DISABLE_PLAN / LASAGNE_DISABLE_FUSION into the
  /// process-wide defaults. The env vars are otherwise read once per
  /// process; tests that setenv() after startup call this to apply
  /// them. Existing models keep their instance flags.
  static void ReloadEnvDefaults();

  void set_use_execution_plan(bool enabled) { use_execution_plan_ = enabled; }
  bool use_execution_plan() const { return use_execution_plan_; }

  void set_use_plan_fusion(bool enabled) { use_plan_fusion_ = enabled; }
  bool use_plan_fusion() const { return use_plan_fusion_; }

  /// The compiled plan, or nullptr when none has been compiled (plans
  /// disabled, Predict never called, or compilation failed).
  const infer::ExecutionPlan* execution_plan() const { return plan_.get(); }

  /// OK until a compile attempt fails; then the reason Predict is on
  /// the eager fallback.
  const Status& plan_status() const { return plan_status_; }

  /// Drops the compiled plan (and any remembered compile failure) so
  /// the next eval Predict recompiles. Call after structural changes —
  /// in-place parameter value updates do NOT need this: leaf slots are
  /// bound by reference.
  void InvalidateExecutionPlan();

  /// All trainable parameters.
  virtual std::vector<ag::Variable> Parameters() const = 0;

  const std::string& name() const { return name_; }
  const Dataset& data() const { return data_; }

  /// Hidden representations captured by the last Forward call.
  const std::vector<Tensor>& hidden_states() const { return hidden_states_; }

 protected:
  /// Stores a hidden representation snapshot for analysis.
  void RecordHidden(const ag::Variable& h) {
    hidden_states_.push_back(h->value());
  }
  void ClearHidden() { hidden_states_.clear(); }

  std::string name_;
  const Dataset& data_;
  std::vector<Tensor> hidden_states_;

 private:
  /// Compiles the plan on first use; remembers failure so a model that
  /// cannot be planned pays the compile attempt once, not per call.
  bool EnsureExecutionPlan();

  std::unique_ptr<infer::ExecutionPlan> plan_;
  Status plan_status_;
  bool plan_compile_failed_ = false;
  bool use_execution_plan_ = ExecutionPlanDefault();
  bool use_plan_fusion_ = PlanFusionDefault();
};

/// Builds a model by registry name. Known names:
///   "gcn", "resgcn", "densegcn", "jknet", "sgc", "gat", "appnp",
///   "mixhop", "gin", "dropedge", "pairnorm", "madreg", "stgcn",
///   "ngcn", "dgcn", "gpnn", "lgcn", "adsf", "graphsage", "fastgcn",
///   "clustergcn", "graphsaint",
///   "lasagne-weighted", "lasagne-stochastic", "lasagne-maxpool"
/// (plus Lasagne base-model variants "lasagne-stochastic-sgc",
/// "lasagne-stochastic-gat"). Aborts on unknown names.
std::unique_ptr<Model> MakeModel(const std::string& name,
                                 const Dataset& data,
                                 const ModelConfig& config);

/// Checks that `config` is usable with `name` (positive depth/width,
/// dropout in [0, 1), a non-empty dataset, a known name, ...) without
/// constructing anything. Returned errors name the offending field.
Status ValidateModelConfig(const std::string& name, const Dataset& data,
                           const ModelConfig& config);

/// Error-returning variant of MakeModel: NotFound for unknown names,
/// InvalidArgument for bad configs, instead of aborting. Preferred at
/// API boundaries (CLI flags, experiment drivers).
StatusOr<std::unique_ptr<Model>> TryMakeModel(const std::string& name,
                                              const Dataset& data,
                                              const ModelConfig& config);

/// Names accepted by MakeModel, in a stable order.
std::vector<std::string> KnownModelNames();

}  // namespace lasagne

#endif  // LASAGNE_MODELS_MODEL_H_
