#include "models/gcn_family.h"

#include <cmath>

#include "core/lstm_aggregator.h"

#include "common/check.h"

namespace lasagne {

namespace {

// Hidden width for layer l of an L-layer stack mapping M -> ... -> F.
size_t LayerIn(size_t l, size_t depth, size_t in_dim, size_t hidden) {
  (void)depth;
  return l == 0 ? in_dim : hidden;
}
size_t LayerOut(size_t l, size_t depth, size_t hidden, size_t out_dim) {
  return l + 1 == depth ? out_dim : hidden;
}

}  // namespace

// ---------------------------------------------------------------------------
// GCN / ResGCN / PairNorm-GCN
// ---------------------------------------------------------------------------

GcnModel::GcnModel(const Dataset& data, const ModelConfig& config,
                   Variant variant, const char* name)
    : Model(name, data), config_(config), variant_(variant) {
  LASAGNE_CHECK_GE(config.depth, 1u);
  a_hat_ = std::make_shared<CsrMatrix>(data.graph.NormalizedAdjacency());
  features_ = ag::MakeConstant(data.features);
  Rng rng(config.seed);
  for (size_t l = 0; l < config.depth; ++l) {
    layers_.emplace_back(
        LayerIn(l, config.depth, data.feature_dim(), config.hidden_dim),
        LayerOut(l, config.depth, config.hidden_dim, data.num_classes),
        rng);
  }
}

GcnModel::GcnModel(const Dataset& data, const ModelConfig& config)
    : GcnModel(data, config, Variant::kPlain, "GCN") {}

ag::Variable GcnModel::Forward(const nn::ForwardContext& ctx) {
  ClearHidden();
  ag::Variable h = features_;
  for (size_t l = 0; l < layers_.size(); ++l) {
    const bool last = (l + 1 == layers_.size());
    ag::Variable next =
        layers_[l].Forward(a_hat_, h, ctx, config_.dropout, !last);
    if (!last) {
      if (variant_ == Variant::kResidual && l > 0) {
        // Identity skip between equal-width hidden layers.
        next = ag::Add(next, h);
      } else if (variant_ == Variant::kPairNorm) {
        next = ag::PairNorm(next, config_.pairnorm_scale);
      }
    }
    h = next;
    RecordHidden(h);
  }
  return h;
}

std::vector<ag::Variable> GcnModel::Parameters() const {
  std::vector<ag::Variable> params;
  for (const auto& layer : layers_) {
    for (const auto& p : layer.Parameters()) params.push_back(p);
  }
  return params;
}

ResGcnModel::ResGcnModel(const Dataset& data, const ModelConfig& config)
    : GcnModel(data, config, Variant::kResidual, "ResGCN") {}

PairNormGcnModel::PairNormGcnModel(const Dataset& data,
                                   const ModelConfig& config)
    : GcnModel(data, config, Variant::kPairNorm, "PairNorm") {}

// ---------------------------------------------------------------------------
// DenseGCN
// ---------------------------------------------------------------------------

DenseGcnModel::DenseGcnModel(const Dataset& data, const ModelConfig& config)
    : Model("DenseGCN", data), config_(config) {
  LASAGNE_CHECK_GE(config.depth, 1u);
  a_hat_ = std::make_shared<CsrMatrix>(data.graph.NormalizedAdjacency());
  features_ = ag::MakeConstant(data.features);
  Rng rng(config.seed);
  size_t accumulated = data.feature_dim();
  for (size_t l = 0; l < config.depth; ++l) {
    layers_.emplace_back(accumulated, config.hidden_dim, rng);
    accumulated += config.hidden_dim;
  }
  classifier_ = std::make_unique<nn::Linear>(
      config.depth * config.hidden_dim, data.num_classes, rng);
}

ag::Variable DenseGcnModel::Forward(const nn::ForwardContext& ctx) {
  ClearHidden();
  std::vector<ag::Variable> stack = {features_};
  for (size_t l = 0; l < layers_.size(); ++l) {
    ag::Variable input =
        stack.size() == 1 ? stack[0] : ag::ConcatCols(stack);
    ag::Variable h =
        layers_[l].Forward(a_hat_, input, ctx, config_.dropout, true);
    RecordHidden(h);
    stack.push_back(h);
  }
  // The classifier fuses the intermediate layer outputs; the raw input
  // stays in the dense connectivity above but out of the readout (it is
  // unpropagated and would dominate the small-label linear head).
  std::vector<ag::Variable> outputs(stack.begin() + 1, stack.end());
  ag::Variable all =
      outputs.size() == 1 ? outputs[0] : ag::ConcatCols(outputs);
  LASAGNE_CHECK(ctx.rng != nullptr);
  all = ag::Dropout(all, config_.dropout, *ctx.rng, ctx.training);
  return classifier_->Forward(all);
}

std::vector<ag::Variable> DenseGcnModel::Parameters() const {
  std::vector<ag::Variable> params;
  for (const auto& layer : layers_) {
    for (const auto& p : layer.Parameters()) params.push_back(p);
  }
  for (const auto& p : classifier_->Parameters()) params.push_back(p);
  return params;
}

// ---------------------------------------------------------------------------
// JK-Net
// ---------------------------------------------------------------------------

JkNetModel::JkNetModel(const Dataset& data, const ModelConfig& config,
                       Mode mode)
    : Model(mode == Mode::kConcat
                ? "JK-Net"
                : (mode == Mode::kMaxPool ? "JK-Net(max)" : "JK-Net(lstm)"),
            data),
      config_(config),
      mode_(mode) {
  LASAGNE_CHECK_GE(config.depth, 1u);
  a_hat_ = std::make_shared<CsrMatrix>(data.graph.NormalizedAdjacency());
  features_ = ag::MakeConstant(data.features);
  Rng rng(config.seed);
  for (size_t l = 0; l < config.depth; ++l) {
    layers_.emplace_back(l == 0 ? data.feature_dim() : config.hidden_dim,
                         config.hidden_dim, rng);
  }
  const size_t combined_dim = mode == Mode::kConcat
                                  ? config.depth * config.hidden_dim
                                  : config.hidden_dim;
  classifier_ = std::make_unique<nn::Linear>(combined_dim,
                                             data.num_classes, rng);
  if (mode == Mode::kLstmAttention) {
    lstm_cell_ = std::make_unique<LstmCell>(config.hidden_dim,
                                            /*hidden_dim=*/16, rng);
    lstm_attn_ = ag::MakeParameter(Tensor::GlorotUniform(16, 1, rng));
  }
}

JkNetModel::~JkNetModel() = default;

ag::Variable JkNetModel::Forward(const nn::ForwardContext& ctx) {
  ClearHidden();
  ag::Variable h = features_;
  std::vector<ag::Variable> outputs;
  for (auto& layer : layers_) {
    h = layer.Forward(a_hat_, h, ctx, config_.dropout, true);
    RecordHidden(h);
    outputs.push_back(h);
  }
  ag::Variable combined;
  switch (mode_) {
    case Mode::kConcat:
      combined = ag::ConcatCols(outputs);
      break;
    case Mode::kMaxPool:
      combined = ag::MaxOverSet(outputs);
      break;
    case Mode::kLstmAttention: {
      // Per-node softmax attention over layers, scored by an LSTM over
      // the layer sequence (JK-Net's third combination mode).
      const size_t n = outputs[0]->rows();
      const size_t l = outputs.size();
      LstmCell::State state = lstm_cell_->InitialState(n);
      std::vector<ag::Variable> scores;
      for (const auto& out : outputs) {
        state = lstm_cell_->Step(out, state);
        scores.push_back(ag::MatMul(state.h, lstm_attn_));
      }
      ag::Variable score_matrix = ag::ConcatCols(scores);
      ag::Variable shifted = ag::Sub(
          score_matrix,
          ag::RowScale(ag::MakeConstant(Tensor::Ones(n, l)),
                       ag::RowMax(score_matrix)));
      ag::Variable exps = ag::Exp(shifted);
      ag::Variable alpha = ag::RowDivide(
          exps, ag::MatMul(exps, ag::MakeConstant(Tensor::Ones(l, 1))));
      std::vector<ag::Variable> terms;
      for (size_t t = 0; t < l; ++t) {
        terms.push_back(
            ag::RowScale(outputs[t], ag::SliceCols(alpha, t, 1)));
      }
      combined = ag::AddMany(terms);
      break;
    }
  }
  LASAGNE_CHECK(ctx.rng != nullptr);
  combined =
      ag::Dropout(combined, config_.dropout, *ctx.rng, ctx.training);
  return classifier_->Forward(combined);
}

std::vector<ag::Variable> JkNetModel::Parameters() const {
  std::vector<ag::Variable> params;
  for (const auto& layer : layers_) {
    for (const auto& p : layer.Parameters()) params.push_back(p);
  }
  for (const auto& p : classifier_->Parameters()) params.push_back(p);
  if (lstm_cell_ != nullptr) {
    for (const auto& p : lstm_cell_->Parameters()) params.push_back(p);
    params.push_back(lstm_attn_);
  }
  return params;
}

// ---------------------------------------------------------------------------
// SGC
// ---------------------------------------------------------------------------

SgcModel::SgcModel(const Dataset& data, const ModelConfig& config)
    : Model("SGC", data), config_(config) {
  CsrMatrix a_hat = data.graph.NormalizedAdjacency();
  Tensor propagated = data.features;
  for (size_t k = 0; k < config.depth; ++k) {
    propagated = a_hat.Multiply(propagated);
  }
  propagated_ = ag::MakeConstant(std::move(propagated));
  Rng rng(config.seed);
  classifier_ = std::make_unique<nn::Linear>(data.feature_dim(),
                                             data.num_classes, rng);
}

ag::Variable SgcModel::Forward(const nn::ForwardContext& ctx) {
  ClearHidden();
  LASAGNE_CHECK(ctx.rng != nullptr);
  ag::Variable x =
      ag::Dropout(propagated_, config_.dropout, *ctx.rng, ctx.training);
  ag::Variable logits = classifier_->Forward(x);
  RecordHidden(logits);
  return logits;
}

std::vector<ag::Variable> SgcModel::Parameters() const {
  return classifier_->Parameters();
}

// ---------------------------------------------------------------------------
// APPNP
// ---------------------------------------------------------------------------

AppnpModel::AppnpModel(const Dataset& data, const ModelConfig& config)
    : Model("APPNP", data), config_(config) {
  a_hat_ = std::make_shared<CsrMatrix>(data.graph.NormalizedAdjacency());
  features_ = ag::MakeConstant(data.features);
  Rng rng(config.seed);
  mlp1_ = std::make_unique<nn::Linear>(data.feature_dim(),
                                       config.hidden_dim, rng);
  mlp2_ = std::make_unique<nn::Linear>(config.hidden_dim,
                                       data.num_classes, rng);
}

ag::Variable AppnpModel::Forward(const nn::ForwardContext& ctx) {
  ClearHidden();
  LASAGNE_CHECK(ctx.rng != nullptr);
  ag::Variable h =
      ag::Dropout(features_, config_.dropout, *ctx.rng, ctx.training);
  h = ag::Relu(mlp1_->Forward(h));
  h = ag::Dropout(h, config_.dropout, *ctx.rng, ctx.training);
  ag::Variable z0 = mlp2_->Forward(h);
  ag::Variable z = z0;
  const float alpha = config_.appnp_alpha;
  for (size_t k = 0; k < config_.appnp_iterations; ++k) {
    z = ag::Add(ag::ScalarMul(ag::SpMM(a_hat_, z), 1.0f - alpha),
                ag::ScalarMul(z0, alpha));
    RecordHidden(z);
  }
  return z;
}

std::vector<ag::Variable> AppnpModel::Parameters() const {
  std::vector<ag::Variable> params = mlp1_->Parameters();
  for (const auto& p : mlp2_->Parameters()) params.push_back(p);
  return params;
}

// ---------------------------------------------------------------------------
// MixHop
// ---------------------------------------------------------------------------

MixHopModel::MixHopModel(const Dataset& data, const ModelConfig& config)
    : Model("MixHop", data), config_(config) {
  LASAGNE_CHECK_GE(config.depth, 1u);
  auto a_hat = std::make_shared<CsrMatrix>(data.graph.NormalizedAdjacency());
  powers_.push_back(
      std::make_shared<CsrMatrix>(CsrMatrix::Identity(data.num_nodes())));
  powers_.push_back(a_hat);
  CsrMatrix running = *a_hat;
  for (size_t p = 2; p <= config.power_k; ++p) {
    running = running.Multiply(*a_hat, 1e-4f, /*row_cap=*/256);
    powers_.push_back(std::make_shared<CsrMatrix>(running));
  }
  features_ = ag::MakeConstant(data.features);
  Rng rng(config.seed);
  const size_t num_powers = powers_.size();
  size_t in_dim = data.feature_dim();
  for (size_t l = 0; l < config.depth; ++l) {
    std::vector<nn::GraphConvolution> per_power;
    for (size_t p = 0; p < num_powers; ++p) {
      per_power.emplace_back(in_dim, config.hidden_dim, rng);
    }
    layer_weights_.push_back(std::move(per_power));
    in_dim = num_powers * config.hidden_dim;
  }
  classifier_ = std::make_unique<nn::Linear>(in_dim, data.num_classes, rng);
}

ag::Variable MixHopModel::Forward(const nn::ForwardContext& ctx) {
  ClearHidden();
  ag::Variable h = features_;
  for (auto& per_power : layer_weights_) {
    std::vector<ag::Variable> pieces;
    for (size_t p = 0; p < per_power.size(); ++p) {
      pieces.push_back(
          per_power[p].Forward(powers_[p], h, ctx, config_.dropout, true));
    }
    h = ag::ConcatCols(pieces);
    RecordHidden(h);
  }
  LASAGNE_CHECK(ctx.rng != nullptr);
  h = ag::Dropout(h, config_.dropout, *ctx.rng, ctx.training);
  return classifier_->Forward(h);
}

std::vector<ag::Variable> MixHopModel::Parameters() const {
  std::vector<ag::Variable> params;
  for (const auto& per_power : layer_weights_) {
    for (const auto& layer : per_power) {
      for (const auto& p : layer.Parameters()) params.push_back(p);
    }
  }
  for (const auto& p : classifier_->Parameters()) params.push_back(p);
  return params;
}

// ---------------------------------------------------------------------------
// GIN
// ---------------------------------------------------------------------------

GinModel::GinModel(const Dataset& data, const ModelConfig& config)
    : Model("GIN", data), config_(config) {
  LASAGNE_CHECK_GE(config.depth, 1u);
  const float eps = 0.1f;
  CsrMatrix sum_op = data.graph.Adjacency().Add(
      CsrMatrix::Identity(data.num_nodes()).Scale(1.0f + eps));
  sum_op_ = std::make_shared<CsrMatrix>(std::move(sum_op));
  features_ = ag::MakeConstant(data.features);
  Rng rng(config.seed);
  for (size_t l = 0; l < config.depth; ++l) {
    mlp_a_.emplace_back(l == 0 ? data.feature_dim() : config.hidden_dim,
                        config.hidden_dim, rng);
    mlp_b_.emplace_back(
        config.hidden_dim,
        l + 1 == config.depth ? data.num_classes : config.hidden_dim, rng);
  }
}

ag::Variable GinModel::Forward(const nn::ForwardContext& ctx) {
  ClearHidden();
  LASAGNE_CHECK(ctx.rng != nullptr);
  ag::Variable h = features_;
  for (size_t l = 0; l < mlp_a_.size(); ++l) {
    const bool last = (l + 1 == mlp_a_.size());
    h = ag::Dropout(h, config_.dropout, *ctx.rng, ctx.training);
    ag::Variable agg = ag::SpMM(sum_op_, h);
    h = mlp_b_[l].Forward(ag::Relu(mlp_a_[l].Forward(agg)));
    if (!last) {
      // GIN pairs the MLP with batch normalization; without it the sum
      // aggregation blows up on hub-heavy graphs.
      h = ag::Relu(ag::BatchNormColumns(h));
    }
    RecordHidden(h);
  }
  return h;
}

std::vector<ag::Variable> GinModel::Parameters() const {
  std::vector<ag::Variable> params;
  for (const auto& m : mlp_a_) {
    for (const auto& p : m.Parameters()) params.push_back(p);
  }
  for (const auto& m : mlp_b_) {
    for (const auto& p : m.Parameters()) params.push_back(p);
  }
  return params;
}

// ---------------------------------------------------------------------------
// Snowball (STGCN-style truncated Krylov)
// ---------------------------------------------------------------------------

SnowballModel::SnowballModel(const Dataset& data, const ModelConfig& config)
    : Model("STGCN", data), config_(config) {
  LASAGNE_CHECK_GE(config.depth, 1u);
  a_hat_ = std::make_shared<CsrMatrix>(data.graph.NormalizedAdjacency());
  features_ = ag::MakeConstant(data.features);
  Rng rng(config.seed);
  size_t accumulated = data.feature_dim();
  for (size_t l = 0; l < config.depth; ++l) {
    layers_.emplace_back(accumulated, config.hidden_dim, rng);
    accumulated += config.hidden_dim;
  }
  classifier_ = std::make_unique<nn::Linear>(accumulated, data.num_classes,
                                             rng);
}

ag::Variable SnowballModel::Forward(const nn::ForwardContext& ctx) {
  ClearHidden();
  std::vector<ag::Variable> stack = {features_};
  for (auto& layer : layers_) {
    ag::Variable input =
        stack.size() == 1 ? stack[0] : ag::ConcatCols(stack);
    ag::Variable h = layer.Forward(a_hat_, input, ctx, config_.dropout,
                                   true);
    RecordHidden(h);
    stack.push_back(h);
  }
  // Krylov readout: the classifier sees the whole (propagated) stack.
  ag::Variable all = ag::ConcatCols(stack);
  LASAGNE_CHECK(ctx.rng != nullptr);
  all = ag::Dropout(all, config_.dropout, *ctx.rng, ctx.training);
  return classifier_->Forward(all);
}

std::vector<ag::Variable> SnowballModel::Parameters() const {
  std::vector<ag::Variable> params;
  for (const auto& layer : layers_) {
    for (const auto& p : layer.Parameters()) params.push_back(p);
  }
  for (const auto& p : classifier_->Parameters()) params.push_back(p);
  return params;
}

// ---------------------------------------------------------------------------
// DropEdge
// ---------------------------------------------------------------------------

DropEdgeGcnModel::DropEdgeGcnModel(const Dataset& data,
                                   const ModelConfig& config)
    : Model("DropEdge", data), config_(config) {
  LASAGNE_CHECK_GE(config.depth, 1u);
  full_a_hat_ =
      std::make_shared<CsrMatrix>(data.graph.NormalizedAdjacency());
  features_ = ag::MakeConstant(data.features);
  Rng rng(config.seed);
  for (size_t l = 0; l < config.depth; ++l) {
    layers_.emplace_back(
        LayerIn(l, config.depth, data.feature_dim(), config.hidden_dim),
        LayerOut(l, config.depth, config.hidden_dim, data.num_classes),
        rng);
  }
}

ag::Variable DropEdgeGcnModel::Forward(const nn::ForwardContext& ctx) {
  ClearHidden();
  LASAGNE_CHECK(ctx.rng != nullptr);
  std::shared_ptr<const CsrMatrix> op = full_a_hat_;
  if (ctx.training && config_.drop_edge_rate > 0.0f) {
    Graph sampled = data_.graph.DropEdges(config_.drop_edge_rate, *ctx.rng);
    op = std::make_shared<CsrMatrix>(sampled.NormalizedAdjacency());
  }
  ag::Variable h = features_;
  for (size_t l = 0; l < layers_.size(); ++l) {
    const bool last = (l + 1 == layers_.size());
    h = layers_[l].Forward(op, h, ctx, config_.dropout, !last);
    RecordHidden(h);
  }
  return h;
}

std::vector<ag::Variable> DropEdgeGcnModel::Parameters() const {
  std::vector<ag::Variable> params;
  for (const auto& layer : layers_) {
    for (const auto& p : layer.Parameters()) params.push_back(p);
  }
  return params;
}

// ---------------------------------------------------------------------------
// MADReg
// ---------------------------------------------------------------------------

MadRegGcnModel::MadRegGcnModel(const Dataset& data,
                               const ModelConfig& config)
    : GcnModel(data, config, Variant::kPlain, "MADReg") {
  // Neighbor pairs: sampled edges. Remote pairs: random node pairs (in a
  // sparse graph a uniform pair is remote with overwhelming probability).
  Rng rng(config.seed ^ 0xabcdef);
  auto edges = data.graph.Edges();
  const size_t want = config.madreg_pairs;
  for (size_t i = 0; i < want && !edges.empty(); ++i) {
    neighbor_pairs_.push_back(edges[rng.UniformInt(edges.size())]);
  }
  const size_t n = data.num_nodes();
  while (remote_pairs_.size() < want) {
    uint32_t a = static_cast<uint32_t>(rng.UniformInt(n));
    uint32_t b = static_cast<uint32_t>(rng.UniformInt(n));
    if (a != b && !data.graph.HasEdge(a, b)) remote_pairs_.emplace_back(a, b);
  }
}

ag::Variable MadRegGcnModel::TrainingLoss(const nn::ForwardContext& ctx) {
  ag::Variable logits = Forward(ctx);
  ag::Variable ce =
      ag::SoftmaxCrossEntropy(logits, data_.labels, data_.train_mask);
  if (neighbor_pairs_.empty() || remote_pairs_.empty()) return ce;
  // MADGap = MAD(remote) - MAD(neighbor); maximize it => subtract.
  ag::Variable mad_neighbor = ag::MeanCosineDistance(logits,
                                                     neighbor_pairs_);
  ag::Variable mad_remote = ag::MeanCosineDistance(logits, remote_pairs_);
  ag::Variable gap = ag::Sub(mad_remote, mad_neighbor);
  return ag::Sub(ce, ag::ScalarMul(gap, config_.madreg_weight));
}

}  // namespace lasagne
