#ifndef LASAGNE_MODELS_ATTENTION_H_
#define LASAGNE_MODELS_ATTENTION_H_

#include <memory>
#include <vector>

#include "models/model.h"
#include "nn/layers.h"

namespace lasagne {

/// GAT (Velickovic et al., ICLR'18): multi-head attention layers;
/// hidden layers concatenate heads, the output layer averages them.
class GatModel : public Model {
 public:
  GatModel(const Dataset& data, const ModelConfig& config);
  ag::Variable Forward(const nn::ForwardContext& ctx) override;
  std::vector<ag::Variable> Parameters() const override;

 protected:
  GatModel(const Dataset& data, const ModelConfig& config, const char* name,
           std::shared_ptr<const std::vector<float>> edge_bias);

  ModelConfig config_;
  std::shared_ptr<const ag::EdgeStructure> edges_;
  ag::Variable features_;
  std::vector<nn::GatMultiHead> layers_;
  std::shared_ptr<const std::vector<float>> edge_bias_;  // optional prior
};

/// ADSF (Zhang et al., ICLR'20), simplified: GAT whose attention scores
/// receive an additive structural-fingerprint prior computed from
/// truncated random walk with restart over k-hop neighborhoods. The
/// paper's full model learns an interaction between feature and
/// structure attention; we add the (log-) structural score as a fixed
/// prior, which preserves the structure-aware reweighting mechanism.
class AdsfModel : public GatModel {
 public:
  AdsfModel(const Dataset& data, const ModelConfig& config);
};

}  // namespace lasagne

#endif  // LASAGNE_MODELS_ATTENTION_H_
