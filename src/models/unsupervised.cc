#include "models/unsupervised.h"

#include <numeric>

#include "autograd/ops.h"
#include "common/check.h"
#include "nn/layers.h"
#include "train/optimizer.h"

namespace lasagne {

namespace {

// Row-shuffled copy of the features (DGI's corruption function).
Tensor ShuffleRows(const Tensor& x, Rng& rng) {
  std::vector<size_t> perm(x.rows());
  std::iota(perm.begin(), perm.end(), size_t{0});
  rng.Shuffle(perm);
  return x.GatherRows(perm);
}

// Logistic-regression probe on frozen embeddings; returns (val, test).
std::pair<double, double> LinearProbe(const Tensor& embeddings,
                                      const Dataset& data,
                                      const TrainOptions& options) {
  Rng rng(options.seed ^ 0x9c0be);
  ag::Variable features = ag::MakeConstant(embeddings);
  ag::Variable weight = ag::MakeParameter(
      Tensor::GlorotUniform(embeddings.cols(), data.num_classes, rng));
  AdamOptimizer opt({weight}, 0.05f, 1e-4f);
  double best_val = 0.0;
  double test_at_best = 0.0;
  size_t since_best = 0;
  for (size_t epoch = 0; epoch < options.max_epochs; ++epoch) {
    opt.ZeroGrad();
    ag::Variable logits = ag::MatMul(features, weight);
    ag::Variable loss =
        ag::SoftmaxCrossEntropy(logits, data.labels, data.train_mask);
    ag::Backward(loss);
    opt.Step();
    const double val = MaskedAccuracy(logits->value(), data.labels,
                                      data.val_mask);
    if (val > best_val) {
      best_val = val;
      test_at_best = MaskedAccuracy(logits->value(), data.labels,
                                    data.test_mask);
      since_best = 0;
    } else if (++since_best >= options.patience) {
      break;
    }
  }
  return {best_val, test_at_best};
}

}  // namespace

UnsupervisedResult RunDgi(const Dataset& data, const ModelConfig& config,
                          const TrainOptions& options) {
  Rng rng(config.seed);
  auto a_hat = std::make_shared<CsrMatrix>(data.graph.NormalizedAdjacency());
  nn::GraphConvolution encoder(data.feature_dim(), config.hidden_dim, rng);
  ag::Variable disc = ag::MakeParameter(
      Tensor::GlorotUniform(config.hidden_dim, config.hidden_dim, rng));
  std::vector<ag::Variable> params = encoder.Parameters();
  params.push_back(disc);
  AdamOptimizer opt(params, options.learning_rate, options.weight_decay);
  ag::Variable features = ag::MakeConstant(data.features);

  Rng train_rng(options.seed);
  UnsupervisedResult result;
  const size_t pretrain_epochs = options.max_epochs;
  for (size_t epoch = 0; epoch < pretrain_epochs; ++epoch) {
    opt.ZeroGrad();
    nn::ForwardContext ctx{true, &train_rng};
    ag::Variable h_pos =
        encoder.Forward(a_hat, features, ctx, config.dropout, true);
    ag::Variable corrupted =
        ag::MakeConstant(ShuffleRows(data.features, train_rng));
    ag::Variable h_neg =
        encoder.Forward(a_hat, corrupted, ctx, config.dropout, true);
    // Readout: sigmoid of the mean patch representation.
    ag::Variable summary = ag::Sigmoid(ag::MeanRows(h_pos));  // 1 x D
    // Bilinear scores h W s^T for positive and corrupted embeddings.
    ag::Variable ws = ag::MatMul(disc, ag::Transpose(summary));  // D x 1
    ag::Variable pos_logits = ag::MatMul(h_pos, ws);
    ag::Variable neg_logits = ag::MatMul(h_neg, ws);
    ag::Variable loss = ag::ScalarMul(
        ag::Add(ag::BinaryCrossEntropyWithLogits(
                    pos_logits, Tensor::Ones(data.num_nodes(), 1)),
                ag::BinaryCrossEntropyWithLogits(
                    neg_logits, Tensor::Zeros(data.num_nodes(), 1))),
        0.5f);
    ag::Backward(loss);
    opt.Step();
    result.pretrain_loss = loss->value()(0, 0);
  }

  // Frozen embeddings -> logistic regression probe.
  Rng eval_rng(1);
  nn::ForwardContext eval_ctx{false, &eval_rng};
  Tensor embeddings =
      encoder.Forward(a_hat, features, eval_ctx, 0.0f, true)->value();
  auto [val, test] = LinearProbe(embeddings, data, options);
  result.val_accuracy = val;
  result.test_accuracy = test;
  return result;
}

UnsupervisedResult RunGmi(const Dataset& data, const ModelConfig& config,
                          const TrainOptions& options) {
  Rng rng(config.seed);
  auto a_hat = std::make_shared<CsrMatrix>(data.graph.NormalizedAdjacency());
  nn::GraphConvolution encoder(data.feature_dim(), config.hidden_dim, rng);
  // Bilinear feature discriminator: embedding x raw feature.
  ag::Variable disc = ag::MakeParameter(
      Tensor::GlorotUniform(config.hidden_dim, data.feature_dim(), rng));
  std::vector<ag::Variable> params = encoder.Parameters();
  params.push_back(disc);
  AdamOptimizer opt(params, options.learning_rate, options.weight_decay);
  ag::Variable features = ag::MakeConstant(data.features);

  // Edge positive pairs and random negative pairs for the edge-MI term.
  auto edges = data.graph.Edges();
  Rng pair_rng(config.seed ^ 0xed6e);
  std::vector<std::pair<uint32_t, uint32_t>> neg_pairs;
  for (size_t i = 0; i < edges.size(); ++i) {
    neg_pairs.emplace_back(
        static_cast<uint32_t>(pair_rng.UniformInt(data.num_nodes())),
        static_cast<uint32_t>(pair_rng.UniformInt(data.num_nodes())));
  }

  Rng train_rng(options.seed);
  UnsupervisedResult result;
  for (size_t epoch = 0; epoch < options.max_epochs; ++epoch) {
    opt.ZeroGrad();
    nn::ForwardContext ctx{true, &train_rng};
    ag::Variable h =
        encoder.Forward(a_hat, features, ctx, config.dropout, true);
    // Feature MI: diag(h W x^T) positive vs shuffled-feature negatives.
    ag::Variable hw = ag::MatMul(h, disc);  // N x M
    ag::Variable pos_scores =
        ag::RowMax(ag::Mul(hw, features));  // proxy: strongest match
    ag::Variable shuffled =
        ag::MakeConstant(ShuffleRows(data.features, train_rng));
    ag::Variable neg_scores = ag::RowMax(ag::Mul(hw, shuffled));
    ag::Variable fmi_loss = ag::ScalarMul(
        ag::Add(ag::BinaryCrossEntropyWithLogits(
                    pos_scores, Tensor::Ones(data.num_nodes(), 1)),
                ag::BinaryCrossEntropyWithLogits(
                    neg_scores, Tensor::Zeros(data.num_nodes(), 1))),
        0.5f);
    // Edge MI: embeddings agree on edges, disagree on random pairs.
    ag::Variable edge_pos = ag::MeanCosineDistance(h, edges);
    ag::Variable edge_neg = ag::MeanCosineDistance(h, neg_pairs);
    ag::Variable edge_loss =
        ag::ScalarMul(ag::Sub(edge_pos, edge_neg), 0.5f);
    ag::Variable loss = ag::Add(fmi_loss, edge_loss);
    ag::Backward(loss);
    opt.Step();
    result.pretrain_loss = loss->value()(0, 0);
  }

  Rng eval_rng(1);
  nn::ForwardContext eval_ctx{false, &eval_rng};
  Tensor embeddings =
      encoder.Forward(a_hat, features, eval_ctx, 0.0f, true)->value();
  auto [val, test] = LinearProbe(embeddings, data, options);
  result.val_accuracy = val;
  result.test_accuracy = test;
  return result;
}

}  // namespace lasagne
