#include "models/sampling_models.h"

#include "common/check.h"
#include "graph/algorithms.h"
#include "sampling/samplers.h"

namespace lasagne {

SampledTrainingModel::SampledTrainingModel(const char* name,
                                           const Dataset& data)
    : Model(name, data) {
  if (data.inductive) {
    train_view_ = std::make_unique<Dataset>(data.TrainSubgraph());
  }
}

// ---------------------------------------------------------------------------
// GraphSAGE
// ---------------------------------------------------------------------------

GraphSageModel::GraphSageModel(const Dataset& data,
                               const ModelConfig& config)
    : SampledTrainingModel("GraphSAGE", data), config_(config) {
  LASAGNE_CHECK_GE(config.depth, 1u);
  full_op_ = std::make_shared<CsrMatrix>(FullNeighborOperator(data.graph));
  features_ = ag::MakeConstant(data.features);
  train_features_ = ag::MakeConstant(train_view().features);
  Rng rng(config.seed);
  for (size_t l = 0; l < config.depth; ++l) {
    const size_t in = l == 0 ? data.feature_dim() : config.hidden_dim;
    const size_t out =
        l + 1 == config.depth ? data.num_classes : config.hidden_dim;
    self_weights_.emplace_back(in, out, rng);
    neighbor_weights_.emplace_back(in, out, rng);
  }
}

ag::Variable GraphSageModel::ForwardOn(
    const Dataset& view, const std::shared_ptr<const CsrMatrix>& op,
    const ag::Variable& features, const nn::ForwardContext& ctx) {
  (void)view;
  ClearHidden();
  LASAGNE_CHECK(ctx.rng != nullptr);
  ag::Variable h = features;
  for (size_t l = 0; l < self_weights_.size(); ++l) {
    const bool last = (l + 1 == self_weights_.size());
    h = ag::Dropout(h, config_.dropout, *ctx.rng, ctx.training);
    ag::Variable agg = ag::SpMM(op, h);
    h = ag::Add(self_weights_[l].Forward(h),
                neighbor_weights_[l].Forward(agg));
    if (!last) h = ag::Relu(h);
    RecordHidden(h);
  }
  return h;
}

ag::Variable GraphSageModel::Forward(const nn::ForwardContext& ctx) {
  return ForwardOn(data_, full_op_, features_, ctx);
}

ag::Variable GraphSageModel::TrainingLoss(const nn::ForwardContext& ctx) {
  LASAGNE_CHECK(ctx.rng != nullptr);
  const Dataset& view = train_view();
  auto sampled = std::make_shared<CsrMatrix>(
      SampleNeighborOperator(view.graph, config_.sage_fanout, *ctx.rng));
  ag::Variable logits = ForwardOn(view, sampled, train_features_, ctx);
  return ag::SoftmaxCrossEntropy(logits, view.labels, view.train_mask);
}

std::vector<ag::Variable> GraphSageModel::Parameters() const {
  std::vector<ag::Variable> params;
  for (const auto& w : self_weights_) {
    for (const auto& p : w.Parameters()) params.push_back(p);
  }
  for (const auto& w : neighbor_weights_) {
    for (const auto& p : w.Parameters()) params.push_back(p);
  }
  return params;
}

// ---------------------------------------------------------------------------
// FastGCN
// ---------------------------------------------------------------------------

FastGcnModel::FastGcnModel(const Dataset& data, const ModelConfig& config)
    : SampledTrainingModel("FastGCN", data), config_(config) {
  LASAGNE_CHECK_GE(config.depth, 1u);
  full_a_hat_ =
      std::make_shared<CsrMatrix>(data.graph.NormalizedAdjacency());
  train_a_hat_ = data.inductive
                     ? std::make_shared<CsrMatrix>(
                           train_view().graph.NormalizedAdjacency())
                     : full_a_hat_;
  features_ = ag::MakeConstant(data.features);
  train_features_ = ag::MakeConstant(train_view().features);
  Rng rng(config.seed);
  for (size_t l = 0; l < config.depth; ++l) {
    const size_t in = l == 0 ? data.feature_dim() : config.hidden_dim;
    const size_t out =
        l + 1 == config.depth ? data.num_classes : config.hidden_dim;
    layers_.emplace_back(in, out, rng);
  }
}

ag::Variable FastGcnModel::ForwardWithOps(
    const std::vector<std::shared_ptr<const CsrMatrix>>& ops,
    const ag::Variable& features, const nn::ForwardContext& ctx) {
  ClearHidden();
  ag::Variable h = features;
  for (size_t l = 0; l < layers_.size(); ++l) {
    const bool last = (l + 1 == layers_.size());
    h = layers_[l].Forward(ops[l], h, ctx, config_.dropout, !last);
    RecordHidden(h);
  }
  return h;
}

ag::Variable FastGcnModel::Forward(const nn::ForwardContext& ctx) {
  std::vector<std::shared_ptr<const CsrMatrix>> ops(layers_.size(),
                                                    full_a_hat_);
  return ForwardWithOps(ops, features_, ctx);
}

ag::Variable FastGcnModel::TrainingLoss(const nn::ForwardContext& ctx) {
  LASAGNE_CHECK(ctx.rng != nullptr);
  const Dataset& view = train_view();
  std::vector<std::shared_ptr<const CsrMatrix>> ops;
  ops.reserve(layers_.size());
  for (size_t l = 0; l < layers_.size(); ++l) {
    ops.push_back(std::make_shared<CsrMatrix>(FastGcnLayerOperator(
        *train_a_hat_, config_.fastgcn_sample, *ctx.rng)));
  }
  ag::Variable logits = ForwardWithOps(ops, train_features_, ctx);
  return ag::SoftmaxCrossEntropy(logits, view.labels, view.train_mask);
}

std::vector<ag::Variable> FastGcnModel::Parameters() const {
  std::vector<ag::Variable> params;
  for (const auto& layer : layers_) {
    for (const auto& p : layer.Parameters()) params.push_back(p);
  }
  return params;
}

// ---------------------------------------------------------------------------
// ClusterGCN
// ---------------------------------------------------------------------------

ClusterGcnModel::ClusterGcnModel(const Dataset& data,
                                 const ModelConfig& config)
    : SampledTrainingModel("ClusterGCN", data), config_(config) {
  LASAGNE_CHECK_GE(config.depth, 1u);
  full_a_hat_ =
      std::make_shared<CsrMatrix>(data.graph.NormalizedAdjacency());
  features_ = ag::MakeConstant(data.features);
  Rng rng(config.seed);
  for (size_t l = 0; l < config.depth; ++l) {
    const size_t in = l == 0 ? data.feature_dim() : config.hidden_dim;
    const size_t out =
        l + 1 == config.depth ? data.num_classes : config.hidden_dim;
    layers_.emplace_back(in, out, rng);
  }

  const Dataset& view = train_view();
  Rng part_rng(config.seed ^ 0xc1u);
  auto parts = PartitionGraph(view.graph, config.num_partitions, part_rng);
  for (auto& nodes : parts) {
    if (nodes.empty()) continue;
    Partition part;
    Graph sub = view.graph.InducedSubgraph(nodes);
    part.a_hat = std::make_shared<CsrMatrix>(sub.NormalizedAdjacency());
    std::vector<size_t> idx(nodes.begin(), nodes.end());
    part.features = ag::MakeConstant(view.features.GatherRows(idx));
    for (uint32_t u : nodes) {
      part.labels.push_back(view.labels[u]);
      part.train_mask.push_back(view.train_mask[u]);
    }
    part.nodes = std::move(nodes);
    bool has_train = false;
    for (float m : part.train_mask) has_train = has_train || m > 0.0f;
    if (has_train) partitions_.push_back(std::move(part));
  }
  LASAGNE_CHECK(!partitions_.empty());
}

ag::Variable ClusterGcnModel::Forward(const nn::ForwardContext& ctx) {
  ClearHidden();
  ag::Variable h = features_;
  for (size_t l = 0; l < layers_.size(); ++l) {
    const bool last = (l + 1 == layers_.size());
    h = layers_[l].Forward(full_a_hat_, h, ctx, config_.dropout, !last);
    RecordHidden(h);
  }
  return h;
}

ag::Variable ClusterGcnModel::TrainingLoss(const nn::ForwardContext& ctx) {
  LASAGNE_CHECK(ctx.rng != nullptr);
  const Partition& part =
      partitions_[ctx.rng->UniformInt(partitions_.size())];
  ag::Variable h = part.features;
  for (size_t l = 0; l < layers_.size(); ++l) {
    const bool last = (l + 1 == layers_.size());
    h = layers_[l].Forward(part.a_hat, h, ctx, config_.dropout, !last);
  }
  return ag::SoftmaxCrossEntropy(h, part.labels, part.train_mask);
}

std::vector<ag::Variable> ClusterGcnModel::Parameters() const {
  std::vector<ag::Variable> params;
  for (const auto& layer : layers_) {
    for (const auto& p : layer.Parameters()) params.push_back(p);
  }
  return params;
}

// ---------------------------------------------------------------------------
// GraphSAINT
// ---------------------------------------------------------------------------

GraphSaintModel::GraphSaintModel(const Dataset& data,
                                 const ModelConfig& config)
    : SampledTrainingModel("GraphSAINT", data), config_(config) {
  LASAGNE_CHECK_GE(config.depth, 1u);
  full_a_hat_ =
      std::make_shared<CsrMatrix>(data.graph.NormalizedAdjacency());
  features_ = ag::MakeConstant(data.features);
  Rng rng(config.seed);
  for (size_t l = 0; l < config.depth; ++l) {
    const size_t in = l == 0 ? data.feature_dim() : config.hidden_dim;
    const size_t out =
        l + 1 == config.depth ? data.num_classes : config.hidden_dim;
    layers_.emplace_back(in, out, rng);
  }
  Rng est_rng(config.seed ^ 0x5a17);
  inclusion_probs_ = EstimateInclusionProbabilities(
      train_view().graph, config.saint_root_count, config.saint_walk_length,
      /*trials=*/20, est_rng);
}

ag::Variable GraphSaintModel::Forward(const nn::ForwardContext& ctx) {
  ClearHidden();
  ag::Variable h = features_;
  for (size_t l = 0; l < layers_.size(); ++l) {
    const bool last = (l + 1 == layers_.size());
    h = layers_[l].Forward(full_a_hat_, h, ctx, config_.dropout, !last);
    RecordHidden(h);
  }
  return h;
}

ag::Variable GraphSaintModel::TrainingLoss(const nn::ForwardContext& ctx) {
  LASAGNE_CHECK(ctx.rng != nullptr);
  const Dataset& view = train_view();
  std::vector<uint32_t> nodes = RandomWalkSubgraphNodes(
      view.graph, config_.saint_root_count, config_.saint_walk_length,
      *ctx.rng);
  if (nodes.size() < 4) return Model::TrainingLoss(ctx);
  Graph sub = view.graph.InducedSubgraph(nodes);
  auto sub_a_hat = std::make_shared<CsrMatrix>(sub.NormalizedAdjacency());
  std::vector<size_t> idx(nodes.begin(), nodes.end());
  ag::Variable h = ag::MakeConstant(view.features.GatherRows(idx));
  for (size_t l = 0; l < layers_.size(); ++l) {
    const bool last = (l + 1 == layers_.size());
    h = layers_[l].Forward(sub_a_hat, h, ctx, config_.dropout, !last);
  }
  // Loss normalization: weight each training node by 1 / inclusion prob.
  std::vector<int32_t> labels;
  std::vector<float> weights;
  bool has_train = false;
  for (uint32_t u : nodes) {
    labels.push_back(view.labels[u]);
    float w = view.train_mask[u] > 0.0f
                  ? static_cast<float>(1.0 / inclusion_probs_[u])
                  : 0.0f;
    has_train = has_train || w > 0.0f;
    weights.push_back(w);
  }
  if (!has_train) return Model::TrainingLoss(ctx);
  return ag::WeightedSoftmaxCrossEntropy(h, labels, weights);
}

std::vector<ag::Variable> GraphSaintModel::Parameters() const {
  std::vector<ag::Variable> params;
  for (const auto& layer : layers_) {
    for (const auto& p : layer.Parameters()) params.push_back(p);
  }
  return params;
}

}  // namespace lasagne
