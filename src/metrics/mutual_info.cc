#include "metrics/mutual_info.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace lasagne {

namespace {

double SquaredDistance(const float* a, const float* b, size_t d) {
  double acc = 0.0;
  for (size_t j = 0; j < d; ++j) {
    const double diff = static_cast<double>(a[j]) - b[j];
    acc += diff * diff;
  }
  return acc;
}

}  // namespace

std::vector<uint32_t> KMeansCluster(const Tensor& points, size_t k,
                                    size_t max_iters, Rng& rng) {
  const size_t n = points.rows();
  const size_t d = points.cols();
  LASAGNE_CHECK_GT(n, 0u);
  LASAGNE_CHECK_GT(k, 0u);
  k = std::min(k, n);

  // k-means++ seeding.
  Tensor centroids(k, d);
  std::vector<double> min_dist(n, 0.0);
  size_t first = static_cast<size_t>(rng.UniformInt(n));
  std::copy(points.RowPtr(first), points.RowPtr(first) + d,
            centroids.RowPtr(0));
  for (size_t c = 1; c < k; ++c) {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double best = SquaredDistance(points.RowPtr(i), centroids.RowPtr(0),
                                    d);
      for (size_t cc = 1; cc < c; ++cc) {
        best = std::min(best, SquaredDistance(points.RowPtr(i),
                                              centroids.RowPtr(cc), d));
      }
      min_dist[i] = best;
      total += best;
    }
    size_t chosen = 0;
    if (total > 0.0) {
      double target = rng.Uniform() * total;
      double cumulative = 0.0;
      for (size_t i = 0; i < n; ++i) {
        cumulative += min_dist[i];
        if (target < cumulative) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = static_cast<size_t>(rng.UniformInt(n));
    }
    std::copy(points.RowPtr(chosen), points.RowPtr(chosen) + d,
              centroids.RowPtr(c));
  }

  std::vector<uint32_t> assignment(n, 0);
  std::vector<double> point_dist(n, 0.0);
  for (size_t iter = 0; iter < max_iters; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      size_t best = 0;
      double best_dist =
          SquaredDistance(points.RowPtr(i), centroids.RowPtr(0), d);
      for (size_t c = 1; c < k; ++c) {
        const double dist =
            SquaredDistance(points.RowPtr(i), centroids.RowPtr(c), d);
        if (dist < best_dist) {
          best_dist = dist;
          best = c;
        }
      }
      point_dist[i] = best_dist;
      if (assignment[i] != best) {
        assignment[i] = static_cast<uint32_t>(best);
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
    centroids.SetZero();
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < n; ++i) {
      const size_t c = assignment[i];
      ++counts[c];
      float* row = centroids.RowPtr(c);
      const float* p = points.RowPtr(i);
      for (size_t j = 0; j < d; ++j) row[j] += p[j];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;
      float* row = centroids.RowPtr(c);
      const float inv = 1.0f / static_cast<float>(counts[c]);
      for (size_t j = 0; j < d; ++j) row[j] *= inv;
    }
    // A cluster that lost all its points must not keep the zero
    // centroid SetZero() left behind (it would silently attract
    // near-origin points on later iterations). Reseed each empty
    // cluster from the point farthest from its current centroid —
    // deterministic: ties break toward the lowest point index, and
    // a reseeded point is not reused for another empty cluster.
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] > 0) continue;
      size_t farthest = 0;
      double farthest_dist = -1.0;
      for (size_t i = 0; i < n; ++i) {
        if (point_dist[i] > farthest_dist) {
          farthest_dist = point_dist[i];
          farthest = i;
        }
      }
      std::copy(points.RowPtr(farthest), points.RowPtr(farthest) + d,
                centroids.RowPtr(c));
      point_dist[farthest] = -1.0;
    }
  }
  return assignment;
}

double DiscreteEntropy(const std::vector<uint32_t>& assignment,
                       size_t num_values) {
  LASAGNE_CHECK(!assignment.empty());
  std::vector<double> counts(num_values, 0.0);
  for (uint32_t a : assignment) {
    LASAGNE_CHECK_LT(a, num_values);
    counts[a] += 1.0;
  }
  const double n = static_cast<double>(assignment.size());
  double entropy = 0.0;
  for (double c : counts) {
    if (c > 0.0) {
      const double p = c / n;
      entropy -= p * std::log(p);
    }
  }
  return entropy;
}

double DiscreteMutualInformation(const std::vector<uint32_t>& a,
                                 const std::vector<uint32_t>& b,
                                 size_t num_a, size_t num_b) {
  LASAGNE_CHECK_EQ(a.size(), b.size());
  LASAGNE_CHECK(!a.empty());
  std::vector<double> joint(num_a * num_b, 0.0);
  std::vector<double> pa(num_a, 0.0);
  std::vector<double> pb(num_b, 0.0);
  const double n = static_cast<double>(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    joint[a[i] * num_b + b[i]] += 1.0;
    pa[a[i]] += 1.0;
    pb[b[i]] += 1.0;
  }
  double mi = 0.0;
  for (size_t i = 0; i < num_a; ++i) {
    for (size_t j = 0; j < num_b; ++j) {
      const double pij = joint[i * num_b + j] / n;
      if (pij > 0.0) {
        mi += pij * std::log(pij * n * n / (pa[i] * pb[j]));
      }
    }
  }
  return std::max(mi, 0.0);
}

double RepresentationMutualInformation(const Tensor& x, const Tensor& h,
                                       size_t clusters, Rng& rng) {
  LASAGNE_CHECK_EQ(x.rows(), h.rows());
  // PCA pre-projection concentrates the class signal into a few
  // directions before vector quantization; without it, k-means on
  // high-dimensional noisy features is unstable and the plug-in MI
  // hugs the noise floor.
  auto quantize = [clusters](const Tensor& points, Rng& qrng) {
    const size_t project_to = std::min<size_t>(6, points.cols());
    Tensor reduced = points.cols() > project_to
                         ? PcaProject(points, project_to, 30, qrng)
                         : points;
    return KMeansCluster(reduced, clusters, 25, qrng);
  };
  Rng rng_x = rng.Split();
  Rng rng_h = rng.Split();
  std::vector<uint32_t> cx = quantize(x, rng_x);
  std::vector<uint32_t> ch = quantize(h, rng_h);
  return DiscreteMutualInformation(cx, ch, clusters, clusters);
}

Tensor PcaProject(const Tensor& x, size_t dims, size_t iters, Rng& rng) {
  const size_t n = x.rows();
  const size_t d = x.cols();
  LASAGNE_CHECK_GT(n, 1u);
  dims = std::min(dims, d);
  // Center.
  Tensor centered = x;
  Tensor mean = x.ColSum() * (1.0f / static_cast<float>(n));
  for (size_t i = 0; i < n; ++i) {
    float* row = centered.RowPtr(i);
    for (size_t j = 0; j < d; ++j) row[j] -= mean(0, j);
  }
  Tensor components(dims, d);
  Tensor projected(n, dims);
  Tensor residual = centered;
  for (size_t c = 0; c < dims; ++c) {
    Tensor v = Tensor::Normal(d, 1, 0.0f, 1.0f, rng);
    for (size_t it = 0; it < iters; ++it) {
      // v <- (R^T R) v, normalized.
      Tensor rv = residual.MatMul(v);          // n x 1
      Tensor next = residual.TransposedMatMul(rv);  // d x 1
      const float norm = next.Norm();
      if (norm < 1e-20f) break;
      next *= 1.0f / norm;
      v = next;
    }
    for (size_t j = 0; j < d; ++j) components(c, j) = v(j, 0);
    // Project and deflate.
    Tensor scores = residual.MatMul(v);  // n x 1
    for (size_t i = 0; i < n; ++i) {
      projected(i, c) = scores(i, 0);
      float* row = residual.RowPtr(i);
      for (size_t j = 0; j < d; ++j) row[j] -= scores(i, 0) * v(j, 0);
    }
  }
  return projected;
}

double BinnedMutualInformation(const std::vector<float>& a,
                               const std::vector<float>& b, size_t bins) {
  LASAGNE_CHECK_EQ(a.size(), b.size());
  LASAGNE_CHECK(!a.empty());
  LASAGNE_CHECK_GT(bins, 1u);
  auto discretize = [bins](const std::vector<float>& v) {
    const float lo = *std::min_element(v.begin(), v.end());
    const float hi = *std::max_element(v.begin(), v.end());
    const float width = (hi - lo) > 1e-12f ? (hi - lo) : 1.0f;
    std::vector<uint32_t> out(v.size());
    for (size_t i = 0; i < v.size(); ++i) {
      size_t bin = static_cast<size_t>((v[i] - lo) / width *
                                       static_cast<float>(bins));
      out[i] = static_cast<uint32_t>(std::min(bin, bins - 1));
    }
    return out;
  };
  return DiscreteMutualInformation(discretize(a), discretize(b), bins,
                                   bins);
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  LASAGNE_CHECK_EQ(a.size(), b.size());
  LASAGNE_CHECK_GT(a.size(), 1u);
  const double n = static_cast<double>(a.size());
  double ma = std::accumulate(a.begin(), a.end(), 0.0) / n;
  double mb = std::accumulate(b.begin(), b.end(), 0.0) / n;
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  const double denom = std::sqrt(va * vb);
  return denom > 1e-20 ? cov / denom : 0.0;
}

namespace {

std::vector<double> Ranks(const std::vector<double>& v) {
  std::vector<size_t> order(v.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&v](size_t x, size_t y) { return v[x] < v[y]; });
  std::vector<double> ranks(v.size());
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j + 1 < order.size() && v[order[j + 1]] == v[order[i]]) ++j;
    const double rank = (static_cast<double>(i) + j) / 2.0 + 1.0;
    for (size_t t = i; t <= j; ++t) ranks[order[t]] = rank;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b) {
  return PearsonCorrelation(Ranks(a), Ranks(b));
}

double MeanAverageDistance(
    const Tensor& x,
    const std::vector<std::pair<uint32_t, uint32_t>>& pairs) {
  LASAGNE_CHECK(!pairs.empty());
  double total = 0.0;
  for (const auto& [a, b] : pairs) {
    const float* ra = x.RowPtr(a);
    const float* rb = x.RowPtr(b);
    double dot = 0.0, na = 0.0, nb = 0.0;
    for (size_t j = 0; j < x.cols(); ++j) {
      dot += static_cast<double>(ra[j]) * rb[j];
      na += static_cast<double>(ra[j]) * ra[j];
      nb += static_cast<double>(rb[j]) * rb[j];
    }
    const double denom = std::sqrt(na) * std::sqrt(nb) + 1e-12;
    total += 1.0 - dot / denom;
  }
  return total / static_cast<double>(pairs.size());
}

}  // namespace lasagne
