#ifndef LASAGNE_METRICS_MUTUAL_INFO_H_
#define LASAGNE_METRICS_MUTUAL_INFO_H_

#include <cstdint>
#include <vector>

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace lasagne {

/// k-means clustering of tensor rows (k-means++ style seeding from the
/// provided RNG). Returns per-row cluster assignments in [0, k).
std::vector<uint32_t> KMeansCluster(const Tensor& points, size_t k,
                                    size_t max_iters, Rng& rng);

/// Shannon entropy (nats) of a discrete assignment vector.
double DiscreteEntropy(const std::vector<uint32_t>& assignment,
                       size_t num_values);

/// Plug-in mutual information (nats) between two discrete assignment
/// vectors of equal length.
double DiscreteMutualInformation(const std::vector<uint32_t>& a,
                                 const std::vector<uint32_t>& b,
                                 size_t num_a, size_t num_b);

/// Mutual information between two continuous representations of the
/// same nodes, estimated by vector quantization: both matrices are
/// k-means clustered into `clusters` codewords and the discrete plug-in
/// MI of the assignments is returned (nats).
///
/// This is the estimator behind the paper's Fig. 2 / Fig. 6 analysis:
/// MI(X; H(l)) between the input features and each hidden layer. Only
/// comparative values matter (which architecture preserves more
/// information), which quantization MI preserves.
double RepresentationMutualInformation(const Tensor& x, const Tensor& h,
                                       size_t clusters, Rng& rng);

/// First `dims` principal components via power iteration with deflation
/// (no external LAPACK). Returns the projected data (rows x dims).
Tensor PcaProject(const Tensor& x, size_t dims, size_t iters, Rng& rng);

/// Histogram MI between two scalar series using `bins` equal-width bins
/// (an alternative estimator; exposed for cross-checking the quantized
/// one in tests and the MI example).
double BinnedMutualInformation(const std::vector<float>& a,
                               const std::vector<float>& b, size_t bins);

/// Pearson correlation of two equal-length series.
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

/// Spearman rank correlation of two equal-length series.
double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b);

/// Mean Average Distance (MADReg, Chen et al. AAAI'20): mean cosine
/// distance of `pairs` rows of `x` (analysis helper; the differentiable
/// version lives in autograd).
double MeanAverageDistance(
    const Tensor& x,
    const std::vector<std::pair<uint32_t, uint32_t>>& pairs);

}  // namespace lasagne

#endif  // LASAGNE_METRICS_MUTUAL_INFO_H_
