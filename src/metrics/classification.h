#ifndef LASAGNE_METRICS_CLASSIFICATION_H_
#define LASAGNE_METRICS_CLASSIFICATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace lasagne {

/// Row-normalized confusion counts and derived per-class metrics for a
/// masked node-classification evaluation.
class ConfusionMatrix {
 public:
  /// Builds from logits (argmax prediction), labels and a 0/1 mask.
  ConfusionMatrix(const Tensor& logits, const std::vector<int32_t>& labels,
                  const std::vector<float>& mask, size_t num_classes);

  size_t num_classes() const { return num_classes_; }
  /// Count of nodes with true class t predicted as p.
  size_t Count(size_t true_class, size_t predicted_class) const;
  size_t TotalCount() const { return total_; }

  double Accuracy() const;
  /// Precision/recall/F1 of one class (0 when undefined).
  double Precision(size_t cls) const;
  double Recall(size_t cls) const;
  double F1(size_t cls) const;
  /// Unweighted mean of per-class F1 (macro-F1; the metric robust to
  /// the class imbalance of the Tencent-style many-class setting).
  double MacroF1() const;
  /// Micro-F1 == accuracy for single-label classification.
  double MicroF1() const { return Accuracy(); }

  /// Small printable summary table.
  std::string DebugString(size_t max_classes = 10) const;

 private:
  size_t num_classes_;
  size_t total_ = 0;
  std::vector<size_t> counts_;  // num_classes x num_classes
};

}  // namespace lasagne

#endif  // LASAGNE_METRICS_CLASSIFICATION_H_
