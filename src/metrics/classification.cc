#include "metrics/classification.h"

#include <sstream>

#include "common/check.h"

namespace lasagne {

ConfusionMatrix::ConfusionMatrix(const Tensor& logits,
                                 const std::vector<int32_t>& labels,
                                 const std::vector<float>& mask,
                                 size_t num_classes)
    : num_classes_(num_classes),
      counts_(num_classes * num_classes, 0) {
  LASAGNE_CHECK_EQ(logits.rows(), labels.size());
  LASAGNE_CHECK_EQ(logits.rows(), mask.size());
  LASAGNE_CHECK_EQ(logits.cols(), num_classes);
  std::vector<size_t> predictions = logits.ArgMaxPerRow();
  for (size_t i = 0; i < mask.size(); ++i) {
    if (mask[i] <= 0.0f) continue;
    const size_t t = static_cast<size_t>(labels[i]);
    LASAGNE_CHECK_LT(t, num_classes_);
    counts_[t * num_classes_ + predictions[i]]++;
    ++total_;
  }
}

size_t ConfusionMatrix::Count(size_t true_class,
                              size_t predicted_class) const {
  LASAGNE_CHECK_LT(true_class, num_classes_);
  LASAGNE_CHECK_LT(predicted_class, num_classes_);
  return counts_[true_class * num_classes_ + predicted_class];
}

double ConfusionMatrix::Accuracy() const {
  if (total_ == 0) return 0.0;
  size_t correct = 0;
  for (size_t c = 0; c < num_classes_; ++c) correct += Count(c, c);
  return static_cast<double>(correct) / static_cast<double>(total_);
}

double ConfusionMatrix::Precision(size_t cls) const {
  size_t predicted = 0;
  for (size_t t = 0; t < num_classes_; ++t) predicted += Count(t, cls);
  if (predicted == 0) return 0.0;
  return static_cast<double>(Count(cls, cls)) /
         static_cast<double>(predicted);
}

double ConfusionMatrix::Recall(size_t cls) const {
  size_t actual = 0;
  for (size_t p = 0; p < num_classes_; ++p) actual += Count(cls, p);
  if (actual == 0) return 0.0;
  return static_cast<double>(Count(cls, cls)) /
         static_cast<double>(actual);
}

double ConfusionMatrix::F1(size_t cls) const {
  const double p = Precision(cls);
  const double r = Recall(cls);
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

double ConfusionMatrix::MacroF1() const {
  if (num_classes_ == 0) return 0.0;
  double total = 0.0;
  for (size_t c = 0; c < num_classes_; ++c) total += F1(c);
  return total / static_cast<double>(num_classes_);
}

std::string ConfusionMatrix::DebugString(size_t max_classes) const {
  std::ostringstream os;
  const size_t show = std::min(max_classes, num_classes_);
  os << "ConfusionMatrix(acc=" << Accuracy()
     << ", macroF1=" << MacroF1() << ")\n";
  for (size_t t = 0; t < show; ++t) {
    os << "  true " << t << ":";
    for (size_t p = 0; p < show; ++p) os << " " << Count(t, p);
    os << "\n";
  }
  return os.str();
}

}  // namespace lasagne
