#include "train/experiment.h"

#include <cmath>

#include "common/check.h"

namespace lasagne {

Summary MeanStd(const std::vector<double>& values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  double total = 0.0;
  for (double v : values) total += v;
  s.mean = total / static_cast<double>(values.size());
  double sq = 0.0;
  for (double v : values) sq += (v - s.mean) * (v - s.mean);
  s.std_dev = std::sqrt(sq / static_cast<double>(values.size()));
  return s;
}

ExperimentResult RunRepeatedExperiment(const std::string& model_name,
                                       const Dataset& data,
                                       const ModelConfig& config,
                                       const TrainOptions& options,
                                       size_t repeats) {
  LASAGNE_CHECK_GT(repeats, 0u);
  ExperimentResult result;
  std::vector<double> test_accs;
  std::vector<double> val_accs;
  std::vector<double> epoch_times;
  for (size_t r = 0; r < repeats; ++r) {
    ModelConfig run_config = config;
    run_config.seed = config.seed + 1000 * r + 17;
    TrainOptions run_options = options;
    run_options.seed = options.seed + 2000 * r + 31;
    std::unique_ptr<Model> model = MakeModel(model_name, data, run_config);
    TrainResult train = TrainModel(*model, run_options);
    test_accs.push_back(train.test_accuracy * 100.0);
    val_accs.push_back(train.best_val_accuracy * 100.0);
    epoch_times.push_back(train.mean_epoch_time_ms);
  }
  result.runs = test_accs;
  result.test_accuracy = MeanStd(test_accs);
  result.val_accuracy = MeanStd(val_accs);
  result.epoch_time_ms = MeanStd(epoch_times);
  return result;
}

}  // namespace lasagne
