#include "train/experiment.h"

#include <cmath>

#include "common/check.h"

namespace lasagne {

Summary MeanStd(const std::vector<double>& values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  double total = 0.0;
  for (double v : values) total += v;
  s.mean = total / static_cast<double>(values.size());
  double sq = 0.0;
  for (double v : values) sq += (v - s.mean) * (v - s.mean);
  s.std_dev = std::sqrt(sq / static_cast<double>(values.size()));
  return s;
}

ExperimentResult RunRepeatedExperiment(const std::string& model_name,
                                       const Dataset& data,
                                       const ModelConfig& config,
                                       const TrainOptions& options,
                                       size_t repeats) {
  LASAGNE_CHECK_GT(repeats, 0u);
  // Extra attempts granted to a trial whose run failed (diverged or
  // could not be constructed) before it counts as a failed trial.
  constexpr size_t kMaxRetriesPerTrial = 2;
  ExperimentResult result;
  std::vector<double> test_accs;
  std::vector<double> val_accs;
  std::vector<double> epoch_times;
  for (size_t r = 0; r < repeats; ++r) {
    bool trial_done = false;
    for (size_t attempt = 0; attempt <= kMaxRetriesPerTrial && !trial_done;
         ++attempt) {
      // Retries perturb both seeds so the re-run draws fresh
      // initialization and dropout/sampling streams.
      ModelConfig run_config = config;
      run_config.seed = config.seed + 1000 * r + 17 + 9973 * attempt;
      TrainOptions run_options = options;
      run_options.seed = options.seed + 2000 * r + 31 + 7919 * attempt;

      StatusOr<std::unique_ptr<Model>> model =
          TryMakeModel(model_name, data, run_config);
      if (!model.ok()) {
        result.trial_errors.push_back(
            "trial " + std::to_string(r) + " attempt " +
            std::to_string(attempt) + ": " + model.status().ToString());
        continue;
      }
      TrainResult train = TrainModel(**model, run_options);
      if (train.diverged) {
        result.trial_errors.push_back(
            "trial " + std::to_string(r) + " attempt " +
            std::to_string(attempt) + ": diverged after " +
            std::to_string(train.recoveries.size()) + " recoveries");
        continue;
      }
      if (attempt > 0) ++result.retried_trials;
      test_accs.push_back(train.test_accuracy * 100.0);
      val_accs.push_back(train.best_val_accuracy * 100.0);
      epoch_times.push_back(train.mean_epoch_time_ms);
      trial_done = true;
    }
    if (!trial_done) ++result.failed_trials;
  }
  result.runs = test_accs;
  result.test_accuracy = MeanStd(test_accs);
  result.val_accuracy = MeanStd(val_accs);
  result.epoch_time_ms = MeanStd(epoch_times);
  return result;
}

}  // namespace lasagne
