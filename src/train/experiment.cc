#include "train/experiment.h"

#include <cmath>
#include <thread>

#include "common/check.h"
#include "common/fault_injection.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lasagne {

namespace {

// Everything one trial produces, merged into the ExperimentResult in
// trial order so the summaries are independent of execution order.
struct TrialOutcome {
  bool done = false;
  bool retried = false;
  double test_acc = 0.0;
  double val_acc = 0.0;
  double epoch_ms = 0.0;
  std::vector<std::string> errors;  // one note per failed attempt
};

}  // namespace

Summary MeanStd(const std::vector<double>& values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  double total = 0.0;
  for (double v : values) total += v;
  s.mean = total / static_cast<double>(values.size());
  double sq = 0.0;
  for (double v : values) sq += (v - s.mean) * (v - s.mean);
  s.std_dev = std::sqrt(sq / static_cast<double>(values.size()));
  return s;
}

ExperimentResult RunRepeatedExperiment(const std::string& model_name,
                                       const Dataset& data,
                                       const ModelConfig& config,
                                       const TrainOptions& options,
                                       size_t repeats) {
  LASAGNE_CHECK_GT(repeats, 0u);
  // Extra attempts granted to a trial whose run failed (diverged or
  // could not be constructed) before it counts as a failed trial.
  constexpr size_t kMaxRetriesPerTrial = 2;

  std::vector<TrialOutcome> outcomes(repeats);
  auto run_trial = [&](size_t r) {
    LASAGNE_TRACE_SCOPE("trial");
    if (obs::MetricsEnabled()) {
      static obs::Counter& trials =
          obs::MetricsRegistry::Global().GetCounter("experiment.trials");
      trials.Increment();
    }
    TrialOutcome& outcome = outcomes[r];
    for (size_t attempt = 0; attempt <= kMaxRetriesPerTrial && !outcome.done;
         ++attempt) {
      // Retries perturb both seeds so the re-run draws fresh
      // initialization and dropout/sampling streams.
      ModelConfig run_config = config;
      run_config.seed = config.seed + 1000 * r + 17 + 9973 * attempt;
      TrainOptions run_options = options;
      run_options.seed = options.seed + 2000 * r + 31 + 7919 * attempt;
      // TelemetryWriter is single-run/single-thread; concurrent trials
      // must not share one sink (see obs/telemetry.h).
      if (r > 0 || attempt > 0) run_options.telemetry = nullptr;

      StatusOr<std::unique_ptr<Model>> model =
          TryMakeModel(model_name, data, run_config);
      if (!model.ok()) {
        outcome.errors.push_back(
            "trial " + std::to_string(r) + " attempt " +
            std::to_string(attempt) + ": " + model.status().ToString());
        continue;
      }
      TrainResult train = TrainModel(**model, run_options);
      if (train.diverged) {
        outcome.errors.push_back(
            "trial " + std::to_string(r) + " attempt " +
            std::to_string(attempt) + ": diverged after " +
            std::to_string(train.recoveries.size()) + " recoveries");
        continue;
      }
      outcome.retried = attempt > 0;
      outcome.test_acc = train.test_accuracy * 100.0;
      outcome.val_acc = train.best_val_accuracy * 100.0;
      outcome.epoch_ms = train.mean_epoch_time_ms;
      outcome.done = true;
    }
  };

  // Each trial owns an independent seeded RNG, so trials can run
  // concurrently on their own threads. Kernels inside a trial worker
  // run serially (ParallelRegionGuard), which keeps the machine at one
  // trial per core and every trial's arithmetic identical to a
  // single-threaded run — the summaries are bitwise-identical at any
  // thread count. Serial fallbacks: a shared checkpoint path (trials
  // would clobber one file) and armed fault injection (which trial
  // consumes an armed fault would be a race).
  const size_t trial_threads =
      std::min<size_t>(GetNumThreads(), repeats);
  const bool parallel_trials = trial_threads > 1 &&
                               options.checkpoint_path.empty() &&
                               !FaultInjector::Global().AnyArmed();
  if (parallel_trials) {
    std::vector<std::thread> workers;
    workers.reserve(trial_threads);
    for (size_t tid = 0; tid < trial_threads; ++tid) {
      workers.emplace_back([&, tid] {
        ParallelRegionGuard guard;
        for (size_t r = tid; r < repeats; r += trial_threads) run_trial(r);
      });
    }
    for (std::thread& w : workers) w.join();
  } else {
    for (size_t r = 0; r < repeats; ++r) run_trial(r);
  }

  ExperimentResult result;
  std::vector<double> test_accs;
  std::vector<double> val_accs;
  std::vector<double> epoch_times;
  for (size_t r = 0; r < repeats; ++r) {
    const TrialOutcome& outcome = outcomes[r];
    result.trial_errors.insert(result.trial_errors.end(),
                               outcome.errors.begin(), outcome.errors.end());
    if (!outcome.done) {
      ++result.failed_trials;
      continue;
    }
    if (outcome.retried) ++result.retried_trials;
    test_accs.push_back(outcome.test_acc);
    val_accs.push_back(outcome.val_acc);
    epoch_times.push_back(outcome.epoch_ms);
  }
  result.runs = test_accs;
  result.test_accuracy = MeanStd(test_accs);
  result.val_accuracy = MeanStd(val_accs);
  result.epoch_time_ms = MeanStd(epoch_times);
  return result;
}

}  // namespace lasagne
