#ifndef LASAGNE_TRAIN_OPTIMIZER_H_
#define LASAGNE_TRAIN_OPTIMIZER_H_

#include <vector>

#include "autograd/variable.h"

namespace lasagne {

/// First-order optimizer over a fixed parameter list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<ag::Variable> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update from the accumulated gradients.
  virtual void Step() = 0;

  /// Clears all parameter gradients.
  void ZeroGrad();

  const std::vector<ag::Variable>& params() const { return params_; }

 protected:
  std::vector<ag::Variable> params_;
};

/// Adam (Kingma & Ba) with L2 regularization added to the gradient
/// (classic weight decay, matching the paper's "l2 regularization
/// factor" setting).
class AdamOptimizer : public Optimizer {
 public:
  AdamOptimizer(std::vector<ag::Variable> params, float learning_rate,
                float weight_decay = 0.0f, float beta1 = 0.9f,
                float beta2 = 0.999f, float epsilon = 1e-8f);

  void Step() override;

 private:
  float learning_rate_;
  float weight_decay_;
  float beta1_;
  float beta2_;
  float epsilon_;
  size_t step_count_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

/// Plain SGD with optional momentum and L2 weight decay.
class SgdOptimizer : public Optimizer {
 public:
  SgdOptimizer(std::vector<ag::Variable> params, float learning_rate,
               float momentum = 0.0f, float weight_decay = 0.0f);

  void Step() override;

 private:
  float learning_rate_;
  float momentum_;
  float weight_decay_;
  std::vector<Tensor> velocity_;
};

}  // namespace lasagne

#endif  // LASAGNE_TRAIN_OPTIMIZER_H_
