#ifndef LASAGNE_TRAIN_OPTIMIZER_H_
#define LASAGNE_TRAIN_OPTIMIZER_H_

#include <vector>

#include "autograd/variable.h"
#include "common/status.h"

namespace lasagne {

/// Complete Adam bookkeeping state, exported for checkpointing and
/// restored on resume so a continued run is bitwise-identical to an
/// uninterrupted one.
struct AdamState {
  size_t step_count = 0;
  std::vector<Tensor> m;  // first moments, one per parameter
  std::vector<Tensor> v;  // second moments, one per parameter
};

/// First-order optimizer over a fixed parameter list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<ag::Variable> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update from the accumulated gradients.
  virtual void Step() = 0;

  /// Clears all parameter gradients.
  void ZeroGrad();

  const std::vector<ag::Variable>& params() const { return params_; }

 protected:
  std::vector<ag::Variable> params_;
};

/// Adam (Kingma & Ba) with L2 regularization added to the gradient
/// (classic weight decay, matching the paper's "l2 regularization
/// factor" setting).
class AdamOptimizer : public Optimizer {
 public:
  AdamOptimizer(std::vector<ag::Variable> params, float learning_rate,
                float weight_decay = 0.0f, float beta1 = 0.9f,
                float beta2 = 0.999f, float epsilon = 1e-8f);

  void Step() override;

  float learning_rate() const { return learning_rate_; }
  /// Used by the trainer's divergence-recovery policy (LR backoff).
  void set_learning_rate(float lr) { learning_rate_ = lr; }
  size_t step_count() const { return step_count_; }

  /// Deep-copies the moment estimates and step counter.
  AdamState ExportState() const;

  /// Replaces the moment estimates and step counter. Fails with
  /// InvalidArgument when the tensor count or shapes don't match the
  /// parameter list.
  Status ImportState(const AdamState& state);

 private:
  float learning_rate_;
  float weight_decay_;
  float beta1_;
  float beta2_;
  float epsilon_;
  size_t step_count_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

/// Plain SGD with optional momentum and L2 weight decay.
class SgdOptimizer : public Optimizer {
 public:
  SgdOptimizer(std::vector<ag::Variable> params, float learning_rate,
               float momentum = 0.0f, float weight_decay = 0.0f);

  void Step() override;

 private:
  float learning_rate_;
  float momentum_;
  float weight_decay_;
  std::vector<Tensor> velocity_;
};

}  // namespace lasagne

#endif  // LASAGNE_TRAIN_OPTIMIZER_H_
