#include "train/trainer.h"

#include <chrono>
#include <cstdio>

#include "common/check.h"
#include "train/optimizer.h"

namespace lasagne {

double MaskedAccuracy(const Tensor& logits,
                      const std::vector<int32_t>& labels,
                      const std::vector<float>& mask) {
  LASAGNE_CHECK_EQ(logits.rows(), labels.size());
  LASAGNE_CHECK_EQ(logits.rows(), mask.size());
  std::vector<size_t> predictions = logits.ArgMaxPerRow();
  double correct = 0.0;
  double total = 0.0;
  for (size_t i = 0; i < mask.size(); ++i) {
    if (mask[i] <= 0.0f) continue;
    total += 1.0;
    if (static_cast<int32_t>(predictions[i]) == labels[i]) correct += 1.0;
  }
  return total > 0.0 ? correct / total : 0.0;
}

double EvaluateAccuracy(Model& model, const std::vector<float>& mask,
                        Rng& rng) {
  nn::ForwardContext ctx{/*training=*/false, &rng};
  ag::Variable logits = model.Forward(ctx);
  return MaskedAccuracy(logits->value(), model.data().labels, mask);
}

TrainResult TrainModel(Model& model, const TrainOptions& options) {
  Rng rng(options.seed);
  std::vector<ag::Variable> params = model.Parameters();
  AdamOptimizer optimizer(params, options.learning_rate,
                          options.weight_decay);
  TrainResult result;
  size_t epochs_since_best = 0;
  std::vector<Tensor> best_params;
  double total_time_ms = 0.0;

  for (size_t epoch = 0; epoch < options.max_epochs; ++epoch) {
    const auto start = std::chrono::steady_clock::now();
    nn::ForwardContext train_ctx{/*training=*/true, &rng};
    optimizer.ZeroGrad();
    ag::Variable loss = model.TrainingLoss(train_ctx);
    ag::Backward(loss);
    optimizer.Step();
    const auto end = std::chrono::steady_clock::now();
    total_time_ms +=
        std::chrono::duration<double, std::milli>(end - start).count();

    result.loss_history.push_back(loss->value()(0, 0));
    const double val_acc = EvaluateAccuracy(model, model.data().val_mask,
                                            rng);
    result.val_accuracy_history.push_back(val_acc);
    result.epochs_run = epoch + 1;

    if (val_acc > result.best_val_accuracy) {
      result.best_val_accuracy = val_acc;
      epochs_since_best = 0;
      if (options.restore_best) {
        best_params.clear();
        for (const ag::Variable& p : params) {
          best_params.push_back(p->value());
        }
      }
    } else {
      ++epochs_since_best;
    }
    if (options.verbose && epoch % 10 == 0) {
      std::printf("  epoch %3zu  loss %.4f  val %.4f\n", epoch,
                  result.loss_history.back(), val_acc);
    }
    if (options.epoch_callback) options.epoch_callback(epoch, model);
    // Paper §5.1.3: terminate when validation accuracy has not improved
    // for `patience` consecutive checks.
    if (epochs_since_best >= options.patience) break;
  }

  if (options.restore_best && !best_params.empty()) {
    for (size_t i = 0; i < params.size(); ++i) {
      params[i]->mutable_value() = best_params[i];
    }
  }
  result.final_loss =
      result.loss_history.empty() ? 0.0 : result.loss_history.back();
  result.mean_epoch_time_ms =
      result.epochs_run > 0
          ? total_time_ms / static_cast<double>(result.epochs_run)
          : 0.0;
  result.test_accuracy =
      EvaluateAccuracy(model, model.data().test_mask, rng);
  result.train_accuracy =
      EvaluateAccuracy(model, model.data().train_mask, rng);
  return result;
}

}  // namespace lasagne
