#include "train/trainer.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/check.h"
#include "common/fault_injection.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "train/optimizer.h"
#include "train/serialization.h"

namespace lasagne {

double MaskedAccuracy(const Tensor& logits,
                      const std::vector<int32_t>& labels,
                      const std::vector<float>& mask) {
  LASAGNE_CHECK_EQ(logits.rows(), labels.size());
  LASAGNE_CHECK_EQ(logits.rows(), mask.size());
  std::vector<size_t> predictions = logits.ArgMaxPerRow();
  double correct = 0.0;
  double total = 0.0;
  for (size_t i = 0; i < mask.size(); ++i) {
    if (mask[i] <= 0.0f) continue;
    total += 1.0;
    if (static_cast<int32_t>(predictions[i]) == labels[i]) correct += 1.0;
  }
  return total > 0.0 ? correct / total : 0.0;
}

double EvaluateAccuracy(Model& model, const std::vector<float>& mask,
                        Rng& rng) {
  LASAGNE_TRACE_SCOPE("evaluate");
  nn::ForwardContext ctx{/*training=*/false, &rng};
  // Forward-only path: no autograd tape is built for evaluation (the
  // values are bitwise identical to the tape-building forward; see
  // tests/inference_test.cc).
  Tensor logits = model.Predict(ctx);
  return MaskedAccuracy(logits, model.data().labels, mask);
}

namespace {

/// Complete in-memory rollback point: everything needed to replay
/// training from the start of an epoch.
struct HealthySnapshot {
  size_t epoch = 0;  // epoch the restored run resumes at
  std::vector<Tensor> params;
  AdamState adam;
  RngState rng;
  size_t epochs_since_best = 0;
  double best_val_accuracy = 0.0;
  std::vector<Tensor> best_params;
};

bool GradientsFinite(const std::vector<ag::Variable>& params) {
  for (const ag::Variable& p : params) {
    if (!p->grad().empty() && !p->grad().AllFinite()) return false;
  }
  return true;
}

bool ParametersFinite(const std::vector<ag::Variable>& params) {
  for (const ag::Variable& p : params) {
    if (!p->value().AllFinite()) return false;
  }
  return true;
}

/// Global L2 norm over all parameter gradients.
double GradientGlobalNorm(const std::vector<ag::Variable>& params) {
  double squared = 0.0;
  for (const ag::Variable& p : params) {
    if (!p->grad().empty()) squared += p->grad().SquaredNorm();
  }
  return std::sqrt(squared);
}

/// Scales all gradients so their global L2 norm is at most `max_norm`.
void ClipGradientsByGlobalNorm(const std::vector<ag::Variable>& params,
                               float max_norm) {
  const double norm = GradientGlobalNorm(params);
  if (norm <= max_norm || norm == 0.0) return;
  const float scale = static_cast<float>(max_norm / norm);
  for (const ag::Variable& p : params) {
    if (!p->grad().empty()) p->mutable_grad() *= scale;
  }
}

}  // namespace

TrainResult TrainModel(Model& model, const TrainOptions& options) {
  Rng rng(options.seed);
  std::vector<ag::Variable> params = model.Parameters();
  AdamOptimizer optimizer(params, options.learning_rate,
                          options.weight_decay);
  TrainResult result;
  size_t epochs_since_best = 0;
  std::vector<Tensor> best_params;
  double total_time_ms = 0.0;
  size_t start_epoch = 0;

  if (options.resume && !options.checkpoint_path.empty()) {
    TrainerState saved;
    Status load = LoadCheckpoint(params, &saved, options.checkpoint_path);
    if (load.ok()) {
      Status import =
          saved.has_optimizer ? optimizer.ImportState(saved.adam)
                              : Status::OK();
      if (import.ok()) {
        if (saved.has_rng) rng.RestoreState(saved.rng);
        if (saved.learning_rate > 0.0f) {
          optimizer.set_learning_rate(saved.learning_rate);
        }
        start_epoch = saved.next_epoch;
        epochs_since_best = saved.epochs_since_best;
        result.best_val_accuracy = saved.best_val_accuracy;
        result.resumed_from_epoch = start_epoch;
      } else {
        result.resume_status = import.WithContext("resume");
      }
    } else if (load.code() != StatusCode::kNotFound) {
      // A corrupt/mismatched checkpoint must not kill the run: report
      // it and start fresh (the file on disk is left untouched).
      result.resume_status = load.WithContext("resume");
    }
    if (!result.resume_status.ok() && options.verbose) {
      std::fprintf(stderr, "  resume failed, starting fresh: %s\n",
                   result.resume_status.ToString().c_str());
    }
  }

  auto capture_snapshot = [&](size_t next_epoch) {
    HealthySnapshot snap;
    snap.epoch = next_epoch;
    snap.params.reserve(params.size());
    for (const ag::Variable& p : params) snap.params.push_back(p->value());
    snap.adam = optimizer.ExportState();
    snap.rng = rng.SaveState();
    snap.epochs_since_best = epochs_since_best;
    snap.best_val_accuracy = result.best_val_accuracy;
    snap.best_params = best_params;
    return snap;
  };
  HealthySnapshot snapshot = capture_snapshot(start_epoch);
  size_t recoveries_used = 0;

  auto recover = [&](size_t epoch, const char* reason) {
    ++recoveries_used;
    for (size_t i = 0; i < params.size(); ++i) {
      params[i]->mutable_value() = snapshot.params[i];
    }
    Status import = optimizer.ImportState(snapshot.adam);
    LASAGNE_CHECK_MSG(import.ok(), import.ToString());
    rng.RestoreState(snapshot.rng);
    // Perturb the stream deterministically so the retry does not
    // replay the exact forward/backward pass that just diverged.
    for (size_t i = 0; i < recoveries_used; ++i) rng.NextUint64();
    epochs_since_best = snapshot.epochs_since_best;
    result.best_val_accuracy = snapshot.best_val_accuracy;
    best_params = snapshot.best_params;
    const float new_lr =
        optimizer.learning_rate() * options.recovery_lr_backoff;
    optimizer.set_learning_rate(new_lr);
    result.recoveries.push_back(RecoveryEvent{epoch, reason, new_lr});
    if (options.telemetry != nullptr) {
      options.telemetry->RecordRecovery(
          obs::RecoveryTelemetry{epoch, reason, new_lr});
    }
    if (obs::MetricsEnabled()) {
      static obs::Counter& recoveries =
          obs::MetricsRegistry::Global().GetCounter("train.recoveries");
      recoveries.Increment();
    }
    if (options.verbose) {
      std::fprintf(stderr,
                   "  recovery %zu at epoch %zu (%s): rollback to epoch "
                   "%zu, lr -> %g\n",
                   recoveries_used, epoch, reason, snapshot.epoch, new_lr);
    }
  };

  size_t epoch = start_epoch;
  while (epoch < options.max_epochs) {
    LASAGNE_TRACE_SCOPE("epoch");
    const auto start = std::chrono::steady_clock::now();
    nn::ForwardContext train_ctx{/*training=*/true, &rng};
    optimizer.ZeroGrad();
    ag::Variable loss = model.TrainingLoss(train_ctx);
    ag::Backward(loss);

    // Read-only probe for telemetry (pre-clipping); skipped entirely
    // when no sink is attached so plain runs pay nothing.
    const double grad_norm = options.telemetry != nullptr
                                 ? GradientGlobalNorm(params)
                                 : 0.0;

    if (FaultInjector::Global().ConsumeNanGradient(epoch)) {
      for (const ag::Variable& p : params) {
        if (!p->grad().empty()) {
          p->mutable_grad().data()[0] =
              std::numeric_limits<float>::quiet_NaN();
          break;
        }
      }
    }

    // Per-epoch numerical health scan: loss and gradients before the
    // step, parameters after it.
    const float loss_value = loss->value()(0, 0);
    const char* fault = nullptr;
    if (!std::isfinite(loss_value)) {
      fault = "non-finite loss";
    } else if (!GradientsFinite(params)) {
      fault = "non-finite gradient";
    } else {
      if (options.grad_clip_norm > 0.0f) {
        ClipGradientsByGlobalNorm(params, options.grad_clip_norm);
      }
      optimizer.Step();
      if (!ParametersFinite(params)) fault = "non-finite parameter";
    }

    if (fault != nullptr) {
      if (recoveries_used >= options.max_recoveries) {
        result.diverged = true;
        if (options.verbose) {
          std::fprintf(stderr,
                       "  divergence at epoch %zu (%s): recovery budget "
                       "(%zu) exhausted\n",
                       epoch, fault, options.max_recoveries);
        }
        break;
      }
      recover(epoch, fault);
      epoch = snapshot.epoch;
      continue;
    }

    const auto end = std::chrono::steady_clock::now();
    const double epoch_ms =
        std::chrono::duration<double, std::milli>(end - start).count();
    total_time_ms += epoch_ms;

    result.loss_history.push_back(loss_value);
    const double val_acc = EvaluateAccuracy(model, model.data().val_mask,
                                            rng);
    result.val_accuracy_history.push_back(val_acc);
    result.epochs_run = epoch + 1;

    if (options.telemetry != nullptr) {
      options.telemetry->RecordEpoch(obs::EpochTelemetry{
          epoch, loss_value, val_acc, grad_norm,
          optimizer.learning_rate(), epoch_ms});
    }
    if (obs::MetricsEnabled()) {
      static obs::Counter& epochs =
          obs::MetricsRegistry::Global().GetCounter("train.epochs");
      static obs::Histogram& epoch_hist =
          obs::MetricsRegistry::Global().GetHistogram("train.epoch_ms");
      epochs.Increment();
      epoch_hist.Record(epoch_ms);
    }

    if (val_acc > result.best_val_accuracy) {
      result.best_val_accuracy = val_acc;
      epochs_since_best = 0;
      if (options.restore_best) {
        best_params.clear();
        for (const ag::Variable& p : params) {
          best_params.push_back(p->value());
        }
      }
    } else {
      ++epochs_since_best;
    }
    if (options.verbose && epoch % 10 == 0) {
      std::printf("  epoch %3zu  loss %.4f  val %.4f\n", epoch,
                  result.loss_history.back(), val_acc);
    }
    if (options.epoch_callback) options.epoch_callback(epoch, model);

    snapshot = capture_snapshot(epoch + 1);

    if (!options.checkpoint_path.empty() && options.checkpoint_interval > 0 &&
        (epoch + 1) % options.checkpoint_interval == 0) {
      TrainerState state;
      state.next_epoch = epoch + 1;
      state.epochs_since_best = epochs_since_best;
      state.best_val_accuracy = result.best_val_accuracy;
      state.learning_rate = optimizer.learning_rate();
      state.has_optimizer = true;
      state.adam = optimizer.ExportState();
      state.has_rng = true;
      state.rng = rng.SaveState();
      Status saved =
          SaveCheckpoint(params, &state, options.checkpoint_path);
      if (!saved.ok()) {
        // Training survives checkpoint I/O failures; the atomic write
        // guarantees the previous checkpoint on disk is still valid.
        ++result.checkpoint_write_failures;
        if (options.verbose) {
          std::fprintf(stderr, "  checkpoint write failed: %s\n",
                       saved.ToString().c_str());
        }
      }
    }

    // Paper §5.1.3: terminate when validation accuracy has not improved
    // for `patience` consecutive checks.
    if (epochs_since_best >= options.patience) break;
    ++epoch;
  }

  if (options.restore_best && !best_params.empty()) {
    for (size_t i = 0; i < params.size(); ++i) {
      params[i]->mutable_value() = best_params[i];
    }
  }
  result.final_loss =
      result.loss_history.empty() ? 0.0 : result.loss_history.back();
  // `total_time_ms` only covers epochs executed by THIS invocation, so
  // the mean must divide by that count, not by the absolute
  // `epochs_run` (which includes pre-resume epochs and would
  // underestimate the mean after --resume).
  result.epochs_executed =
      result.epochs_run > start_epoch ? result.epochs_run - start_epoch : 0;
  result.mean_epoch_time_ms =
      result.epochs_executed > 0
          ? total_time_ms / static_cast<double>(result.epochs_executed)
          : 0.0;
  result.test_accuracy =
      EvaluateAccuracy(model, model.data().test_mask, rng);
  result.train_accuracy =
      EvaluateAccuracy(model, model.data().train_mask, rng);
  return result;
}

}  // namespace lasagne
