#ifndef LASAGNE_TRAIN_SERIALIZATION_H_
#define LASAGNE_TRAIN_SERIALIZATION_H_

#include <string>
#include <vector>

#include "autograd/variable.h"
#include "models/model.h"

namespace lasagne {

/// Writes all parameter tensors to a portable text checkpoint:
///   lasagne-checkpoint v1
///   <num_tensors>
///   <rows> <cols>
///   <row-major values...>
/// Returns false (with no partial file guarantees beyond truncation) on
/// I/O failure.
bool SaveParameters(const std::vector<ag::Variable>& params,
                    const std::string& path);

/// Convenience overload for a model.
bool SaveModel(const Model& model, const std::string& path);

/// Restores parameter values from a checkpoint written by
/// SaveParameters. The parameter list must match in count and shapes
/// (same architecture/config); returns false on mismatch or I/O error.
bool LoadParameters(const std::vector<ag::Variable>& params,
                    const std::string& path);

/// Convenience overload for a model.
bool LoadModel(Model& model, const std::string& path);

}  // namespace lasagne

#endif  // LASAGNE_TRAIN_SERIALIZATION_H_
