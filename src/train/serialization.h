#ifndef LASAGNE_TRAIN_SERIALIZATION_H_
#define LASAGNE_TRAIN_SERIALIZATION_H_

#include <string>
#include <vector>

#include "autograd/variable.h"
#include "common/status.h"
#include "models/model.h"
#include "tensor/rng.h"
#include "train/optimizer.h"

namespace lasagne {

/// Everything beyond raw parameters that `TrainModel` needs to resume a
/// run mid-flight: position in the epoch loop, early-stopping
/// bookkeeping, the (possibly backed-off) learning rate, Adam moments,
/// and the RNG stream.
struct TrainerState {
  size_t next_epoch = 0;        // first epoch the resumed run executes
  size_t epochs_since_best = 0;
  double best_val_accuracy = 0.0;
  float learning_rate = 0.0f;
  bool has_optimizer = false;
  AdamState adam;
  bool has_rng = false;
  RngState rng;
};

/// Writes a v2 checkpoint:
///
///   lasagne-checkpoint v2 <fnv1a-64 hex> <payload-bytes>
///   <payload>
///
/// The payload stores every tensor entry as its raw IEEE-754 bit
/// pattern (8/16 hex digits), so loads are bitwise-exact, and carries
/// optional optimizer/trainer/RNG sections (`trainer_state` may be
/// null for a parameters-only checkpoint). The write is crash-safe:
/// the payload is staged to `path + ".tmp"`, fsync'd, then atomically
/// renamed over `path`, so a crash at any byte leaves either the
/// previous checkpoint or the complete new one — never a torn file.
Status SaveCheckpoint(const std::vector<ag::Variable>& params,
                      const TrainerState* trainer_state,
                      const std::string& path);

/// Restores a checkpoint written by SaveCheckpoint (v2) or the legacy
/// v1 text format. The parameter list must match in count and shapes
/// (same architecture/config). On v2 files the header checksum is
/// verified before any tensor is touched; truncation, corruption and
/// shape mismatches come back as DataLoss / InvalidArgument errors.
/// `trainer_state` may be null; v1 files carry no trainer state and
/// leave `*trainer_state` defaulted.
Status LoadCheckpoint(const std::vector<ag::Variable>& params,
                      TrainerState* trainer_state,
                      const std::string& path);

/// Convenience overloads for a model (parameters only).
Status SaveModelCheckpoint(const Model& model, const std::string& path);
Status LoadModelCheckpoint(Model& model, const std::string& path);

// -- Legacy bool API -------------------------------------------------------
// Thin wrappers kept for existing call sites; they discard the error
// detail. Saves now emit the crash-safe v2 format; loads accept both
// v1 and v2.

bool SaveParameters(const std::vector<ag::Variable>& params,
                    const std::string& path);
bool SaveModel(const Model& model, const std::string& path);
bool LoadParameters(const std::vector<ag::Variable>& params,
                    const std::string& path);
bool LoadModel(Model& model, const std::string& path);

}  // namespace lasagne

#endif  // LASAGNE_TRAIN_SERIALIZATION_H_
