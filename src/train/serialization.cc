#include "train/serialization.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/fault_injection.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lasagne {
namespace {

inline void CountCheckpoint(const char* name) {
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry::Global().GetCounter(name).Increment();
  }
}

// -- Bitwise-exact float encoding ------------------------------------------
// Tensor entries round-trip through their IEEE-754 bit patterns so a
// resumed run sees exactly the values it checkpointed (decimal text at
// any precision cannot guarantee that for float32).

uint32_t FloatBits(float f) {
  uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}

float FloatFromBits(uint32_t u) {
  float f;
  std::memcpy(&f, &u, sizeof(f));
  return f;
}

uint64_t DoubleBits(double d) {
  uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

double DoubleFromBits(uint64_t u) {
  double d;
  std::memcpy(&d, &u, sizeof(d));
  return d;
}

void AppendHex32(std::string& out, uint32_t u) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", u);
  out += buf;
}

void AppendHex64(std::string& out, uint64_t u) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(u));
  out += buf;
}

Status ReadHex64(std::istream& in, const char* what, uint64_t* value) {
  std::string token;
  if (!(in >> token)) {
    return DataLossError(std::string("checkpoint ends before ") + what);
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(token.c_str(), &end, 16);
  if (errno != 0 || end == token.c_str() || *end != '\0') {
    return DataLossError(std::string("malformed hex token for ") + what +
                         ": '" + token + "'");
  }
  *value = parsed;
  return Status::OK();
}

Status ReadSize(std::istream& in, const char* what, size_t* value) {
  if (!(in >> *value)) {
    return DataLossError(std::string("checkpoint ends before ") + what);
  }
  return Status::OK();
}

uint64_t Fnv1a64(const std::string& bytes) {
  uint64_t hash = 1469598103934665603ULL;
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return hash;
}

void AppendTensor(std::string& out, const Tensor& t) {
  out += std::to_string(t.rows());
  out += ' ';
  out += std::to_string(t.cols());
  out += '\n';
  for (size_t i = 0; i < t.size(); ++i) {
    AppendHex32(out, FloatBits(t.data()[i]));
    out += (i + 1 == t.size()) ? '\n' : ' ';
  }
  if (t.size() == 0) out += '\n';
}

/// Reads one tensor written by AppendTensor into `t`, which must
/// already have the expected shape (`context` names it in errors).
Status ReadTensorInto(std::istream& in, const std::string& context,
                      Tensor& t) {
  size_t rows = 0, cols = 0;
  LASAGNE_RETURN_IF_ERROR(ReadSize(in, "tensor rows", &rows));
  LASAGNE_RETURN_IF_ERROR(ReadSize(in, "tensor cols", &cols));
  if (rows != t.rows() || cols != t.cols()) {
    return InvalidArgumentError(
        context + " shape mismatch: checkpoint has " + std::to_string(rows) +
        "x" + std::to_string(cols) + ", expected " +
        std::to_string(t.rows()) + "x" + std::to_string(t.cols()));
  }
  for (size_t i = 0; i < t.size(); ++i) {
    uint64_t bits = 0;
    LASAGNE_RETURN_IF_ERROR(ReadHex64(in, "tensor entry", &bits));
    t.data()[i] = FloatFromBits(static_cast<uint32_t>(bits));
  }
  return Status::OK();
}

// -- Crash-safe file write -------------------------------------------------

Status WriteFileAtomic(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return IOError("open " + tmp + ": " + std::strerror(errno));
  }

  size_t limit = contents.size();
  size_t injected_cutoff = 0;
  const bool injected =
      FaultInjector::Global().ConsumeWriteFailure(&injected_cutoff);
  if (injected && injected_cutoff < limit) limit = injected_cutoff;

  size_t written = 0;
  while (written < limit) {
    ssize_t n = ::write(fd, contents.data() + written, limit - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status = IOError("write " + tmp + ": " + std::strerror(errno));
      ::close(fd);
      return status;
    }
    written += static_cast<size_t>(n);
  }
  if (injected) {
    // Simulated crash/full-disk: leave the torn temp file behind, as a
    // real crash would, and never touch the destination path.
    ::close(fd);
    return IOError("injected write failure after " + std::to_string(limit) +
                   " bytes (torn temp file at " + tmp + ")");
  }
  if (::fsync(fd) != 0) {
    Status status = IOError("fsync " + tmp + ": " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::close(fd) != 0) {
    return IOError("close " + tmp + ": " + std::strerror(errno));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return IOError("rename " + tmp + " -> " + path + ": " +
                   std::strerror(errno));
  }
  return Status::OK();
}

Status CheckParamShapes(const std::vector<ag::Variable>& params,
                        size_t count) {
  if (count != params.size()) {
    return InvalidArgumentError(
        "checkpoint holds " + std::to_string(count) + " tensors, model has " +
        std::to_string(params.size()) + " parameters");
  }
  return Status::OK();
}

// -- v1 loader (legacy decimal text format) --------------------------------

Status LoadV1Payload(std::istream& in,
                     const std::vector<ag::Variable>& params) {
  size_t count = 0;
  LASAGNE_RETURN_IF_ERROR(ReadSize(in, "tensor count", &count));
  LASAGNE_RETURN_IF_ERROR(CheckParamShapes(params, count));
  for (const ag::Variable& p : params) {
    size_t rows = 0, cols = 0;
    LASAGNE_RETURN_IF_ERROR(ReadSize(in, "tensor rows", &rows));
    LASAGNE_RETURN_IF_ERROR(ReadSize(in, "tensor cols", &cols));
    Tensor& t = p->mutable_value();
    if (rows != t.rows() || cols != t.cols()) {
      return InvalidArgumentError(
          "parameter shape mismatch: checkpoint has " +
          std::to_string(rows) + "x" + std::to_string(cols) + ", expected " +
          std::to_string(t.rows()) + "x" + std::to_string(t.cols()));
    }
    for (size_t i = 0; i < t.size(); ++i) {
      if (!(in >> t.data()[i])) {
        return DataLossError("v1 checkpoint truncated mid-tensor");
      }
    }
  }
  return Status::OK();
}

Status LoadV2Payload(const std::string& payload,
                     const std::vector<ag::Variable>& params,
                     TrainerState* trainer_state) {
  std::istringstream in(payload);
  std::string section;

  if (!(in >> section) || section != "tensors") {
    return DataLossError("v2 payload does not start with 'tensors'");
  }
  size_t count = 0;
  LASAGNE_RETURN_IF_ERROR(ReadSize(in, "tensor count", &count));
  LASAGNE_RETURN_IF_ERROR(CheckParamShapes(params, count));
  for (size_t i = 0; i < params.size(); ++i) {
    LASAGNE_RETURN_IF_ERROR(ReadTensorInto(
        in, "parameter " + std::to_string(i), params[i]->mutable_value()));
  }

  TrainerState state;

  if (!(in >> section) || section != "optimizer") {
    return DataLossError("v2 payload missing 'optimizer' section");
  }
  std::string kind;
  if (!(in >> kind)) return DataLossError("optimizer section truncated");
  if (kind == "adam") {
    state.has_optimizer = true;
    LASAGNE_RETURN_IF_ERROR(
        ReadSize(in, "adam step count", &state.adam.step_count));
    state.adam.m.reserve(params.size());
    state.adam.v.reserve(params.size());
    for (int moment = 0; moment < 2; ++moment) {
      for (size_t i = 0; i < params.size(); ++i) {
        Tensor t(params[i]->rows(), params[i]->cols());
        LASAGNE_RETURN_IF_ERROR(ReadTensorInto(
            in, "adam moment for parameter " + std::to_string(i), t));
        (moment == 0 ? state.adam.m : state.adam.v).push_back(std::move(t));
      }
    }
  } else if (kind != "none") {
    return DataLossError("unknown optimizer kind: '" + kind + "'");
  }

  if (!(in >> section) || section != "trainer") {
    return DataLossError("v2 payload missing 'trainer' section");
  }
  if (!(in >> kind)) return DataLossError("trainer section truncated");
  if (kind == "state") {
    uint64_t best_bits = 0, lr_bits = 0;
    LASAGNE_RETURN_IF_ERROR(ReadSize(in, "next epoch", &state.next_epoch));
    LASAGNE_RETURN_IF_ERROR(
        ReadSize(in, "epochs since best", &state.epochs_since_best));
    LASAGNE_RETURN_IF_ERROR(ReadHex64(in, "best val accuracy", &best_bits));
    LASAGNE_RETURN_IF_ERROR(ReadHex64(in, "learning rate", &lr_bits));
    state.best_val_accuracy = DoubleFromBits(best_bits);
    state.learning_rate = FloatFromBits(static_cast<uint32_t>(lr_bits));
  } else if (kind != "none") {
    return DataLossError("unknown trainer section kind: '" + kind + "'");
  }

  if (!(in >> section) || section != "rng") {
    return DataLossError("v2 payload missing 'rng' section");
  }
  if (!(in >> kind)) return DataLossError("rng section truncated");
  if (kind == "state") {
    state.has_rng = true;
    uint64_t rng_bits = 0, cached_bits = 0;
    int has_cached = 0;
    LASAGNE_RETURN_IF_ERROR(ReadHex64(in, "rng state", &rng_bits));
    if (!(in >> has_cached)) return DataLossError("rng section truncated");
    LASAGNE_RETURN_IF_ERROR(ReadHex64(in, "rng cached normal", &cached_bits));
    state.rng.state = rng_bits;
    state.rng.has_cached_normal = has_cached != 0;
    state.rng.cached_normal = DoubleFromBits(cached_bits);
  } else if (kind != "none") {
    return DataLossError("unknown rng section kind: '" + kind + "'");
  }

  if (!(in >> section) || section != "end") {
    return DataLossError("v2 payload missing 'end' marker");
  }

  if (trainer_state != nullptr) *trainer_state = std::move(state);
  return Status::OK();
}

}  // namespace

Status SaveCheckpoint(const std::vector<ag::Variable>& params,
                      const TrainerState* trainer_state,
                      const std::string& path) {
  LASAGNE_TRACE_SCOPE("checkpoint.save");
  CountCheckpoint("checkpoint.saves");
  std::string payload;
  payload += "tensors " + std::to_string(params.size()) + "\n";
  for (const ag::Variable& p : params) AppendTensor(payload, p->value());

  if (trainer_state != nullptr && trainer_state->has_optimizer) {
    const AdamState& adam = trainer_state->adam;
    if (adam.m.size() != params.size() || adam.v.size() != params.size()) {
      return InvalidArgumentError(
          "trainer state Adam moments do not match parameter count");
    }
    payload +=
        "optimizer adam " + std::to_string(adam.step_count) + "\n";
    for (const Tensor& t : adam.m) AppendTensor(payload, t);
    for (const Tensor& t : adam.v) AppendTensor(payload, t);
  } else {
    payload += "optimizer none\n";
  }

  if (trainer_state != nullptr) {
    payload += "trainer state " + std::to_string(trainer_state->next_epoch) +
               " " + std::to_string(trainer_state->epochs_since_best) + " ";
    AppendHex64(payload, DoubleBits(trainer_state->best_val_accuracy));
    payload += ' ';
    AppendHex32(payload, FloatBits(trainer_state->learning_rate));
    payload += '\n';
  } else {
    payload += "trainer none\n";
  }

  if (trainer_state != nullptr && trainer_state->has_rng) {
    payload += "rng state ";
    AppendHex64(payload, trainer_state->rng.state);
    payload += trainer_state->rng.has_cached_normal ? " 1 " : " 0 ";
    AppendHex64(payload, DoubleBits(trainer_state->rng.cached_normal));
    payload += '\n';
  } else {
    payload += "rng none\n";
  }
  payload += "end\n";

  std::string file = "lasagne-checkpoint v2 ";
  AppendHex64(file, Fnv1a64(payload));
  file += ' ';
  file += std::to_string(payload.size());
  file += '\n';
  file += payload;
  return WriteFileAtomic(path, file).WithContext("saving checkpoint " + path);
}

Status LoadCheckpoint(const std::vector<ag::Variable>& params,
                      TrainerState* trainer_state,
                      const std::string& path) {
  LASAGNE_TRACE_SCOPE("checkpoint.load");
  CountCheckpoint("checkpoint.loads");
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("cannot open checkpoint " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string file = buffer.str();

  std::istringstream header(file);
  std::string magic, version;
  if (!(header >> magic >> version) || magic != "lasagne-checkpoint") {
    return DataLossError(path + " is not a lasagne checkpoint");
  }

  if (version == "v1") {
    if (trainer_state != nullptr) *trainer_state = TrainerState();
    return LoadV1Payload(header, params).WithContext("loading " + path);
  }
  if (version != "v2") {
    return DataLossError("unsupported checkpoint version '" + version +
                         "' in " + path);
  }

  uint64_t expected_checksum = 0;
  size_t payload_bytes = 0;
  Status header_status = ReadHex64(header, "checksum", &expected_checksum);
  if (header_status.ok()) {
    header_status = ReadSize(header, "payload size", &payload_bytes);
  }
  LASAGNE_RETURN_IF_ERROR(header_status.WithContext("loading " + path));

  const size_t payload_start = file.find('\n');
  if (payload_start == std::string::npos) {
    return DataLossError(path + ": header line has no terminator");
  }
  const std::string payload = file.substr(payload_start + 1);
  if (payload.size() != payload_bytes) {
    return DataLossError(path + ": payload is " +
                         std::to_string(payload.size()) +
                         " bytes, header declares " +
                         std::to_string(payload_bytes) +
                         (payload.size() < payload_bytes ? " (truncated?)"
                                                         : ""));
  }
  const uint64_t actual_checksum = Fnv1a64(payload);
  if (actual_checksum != expected_checksum) {
    return DataLossError(path + ": checksum mismatch (file is corrupt)");
  }
  return LoadV2Payload(payload, params, trainer_state)
      .WithContext("loading " + path);
}

Status SaveModelCheckpoint(const Model& model, const std::string& path) {
  return SaveCheckpoint(model.Parameters(), nullptr, path);
}

Status LoadModelCheckpoint(Model& model, const std::string& path) {
  return LoadCheckpoint(model.Parameters(), nullptr, path);
}

bool SaveParameters(const std::vector<ag::Variable>& params,
                    const std::string& path) {
  return SaveCheckpoint(params, nullptr, path).ok();
}

bool SaveModel(const Model& model, const std::string& path) {
  return SaveModelCheckpoint(model, path).ok();
}

bool LoadParameters(const std::vector<ag::Variable>& params,
                    const std::string& path) {
  return LoadCheckpoint(params, nullptr, path).ok();
}

bool LoadModel(Model& model, const std::string& path) {
  return LoadModelCheckpoint(model, path).ok();
}

}  // namespace lasagne
