#include "train/serialization.h"

#include <fstream>

namespace lasagne {

bool SaveParameters(const std::vector<ag::Variable>& params,
                    const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << "lasagne-checkpoint v1\n" << params.size() << "\n";
  out.precision(9);
  for (const ag::Variable& p : params) {
    const Tensor& t = p->value();
    out << t.rows() << " " << t.cols() << "\n";
    for (size_t i = 0; i < t.size(); ++i) {
      out << t.data()[i] << (i + 1 == t.size() ? '\n' : ' ');
    }
    if (t.size() == 0) out << "\n";
  }
  return static_cast<bool>(out);
}

bool SaveModel(const Model& model, const std::string& path) {
  return SaveParameters(model.Parameters(), path);
}

bool LoadParameters(const std::vector<ag::Variable>& params,
                    const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  std::string magic, version;
  in >> magic >> version;
  if (magic != "lasagne-checkpoint" || version != "v1") return false;
  size_t count = 0;
  in >> count;
  if (count != params.size()) return false;
  for (const ag::Variable& p : params) {
    size_t rows = 0, cols = 0;
    in >> rows >> cols;
    Tensor& t = p->mutable_value();
    if (rows != t.rows() || cols != t.cols()) return false;
    for (size_t i = 0; i < t.size(); ++i) {
      if (!(in >> t.data()[i])) return false;
    }
  }
  return true;
}

bool LoadModel(Model& model, const std::string& path) {
  return LoadParameters(model.Parameters(), path);
}

}  // namespace lasagne
