#ifndef LASAGNE_TRAIN_TRAINER_H_
#define LASAGNE_TRAIN_TRAINER_H_

#include <functional>
#include <vector>

#include "models/model.h"

namespace lasagne {

/// Training hyper-parameters (defaults follow the paper's §5.1.3:
/// Adam, lr 0.02, L2 5e-4, up to 400 epochs, early stop after 20
/// non-improving validation checks).
struct TrainOptions {
  size_t max_epochs = 400;
  size_t patience = 20;
  float learning_rate = 0.02f;
  float weight_decay = 5e-4f;
  uint64_t seed = 1;
  bool verbose = false;
  /// Restore the parameters of the best-validation epoch before the
  /// final test evaluation.
  bool restore_best = true;
  /// Optional per-epoch observer (runs after the optimizer step), e.g.
  /// the Fig. 6 mutual-information probe.
  std::function<void(size_t epoch, Model& model)> epoch_callback;
};

/// Outcome of one training run.
struct TrainResult {
  double best_val_accuracy = 0.0;
  double test_accuracy = 0.0;
  double train_accuracy = 0.0;
  double final_loss = 0.0;
  size_t epochs_run = 0;
  double mean_epoch_time_ms = 0.0;
  std::vector<double> loss_history;
  std::vector<double> val_accuracy_history;
};

/// Argmax accuracy of `logits` over nodes with mask > 0.
double MaskedAccuracy(const Tensor& logits,
                      const std::vector<int32_t>& labels,
                      const std::vector<float>& mask);

/// Evaluates the model (training=false) on the given mask.
double EvaluateAccuracy(Model& model, const std::vector<float>& mask,
                        Rng& rng);

/// Full training loop: Adam + early stopping on validation accuracy.
TrainResult TrainModel(Model& model, const TrainOptions& options);

}  // namespace lasagne

#endif  // LASAGNE_TRAIN_TRAINER_H_
