#ifndef LASAGNE_TRAIN_TRAINER_H_
#define LASAGNE_TRAIN_TRAINER_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "models/model.h"

namespace lasagne {

namespace obs {
class TelemetryWriter;
}  // namespace obs

/// Training hyper-parameters (defaults follow the paper's §5.1.3:
/// Adam, lr 0.02, L2 5e-4, up to 400 epochs, early stop after 20
/// non-improving validation checks).
struct TrainOptions {
  size_t max_epochs = 400;
  size_t patience = 20;
  float learning_rate = 0.02f;
  float weight_decay = 5e-4f;
  uint64_t seed = 1;
  bool verbose = false;
  /// Restore the parameters of the best-validation epoch before the
  /// final test evaluation.
  bool restore_best = true;
  /// Optional per-epoch observer (runs after the optimizer step), e.g.
  /// the Fig. 6 mutual-information probe.
  std::function<void(size_t epoch, Model& model)> epoch_callback;

  // -- Numerical health & divergence recovery ------------------------------

  /// Global-norm gradient clipping threshold; 0 disables clipping.
  float grad_clip_norm = 0.0f;
  /// On a NaN/Inf loss, gradient or parameter, the trainer rolls back
  /// to the last healthy epoch, multiplies the learning rate by
  /// `recovery_lr_backoff`, and retries — at most this many times per
  /// run before giving up (`TrainResult::diverged`).
  size_t max_recoveries = 3;
  float recovery_lr_backoff = 0.5f;

  // -- Crash-safe checkpointing --------------------------------------------

  /// When non-empty, a v2 checkpoint (parameters + Adam moments + RNG
  /// + epoch counters) is written here every `checkpoint_interval`
  /// epochs via an atomic temp-file+rename, so a killed run can resume.
  std::string checkpoint_path;
  size_t checkpoint_interval = 1;
  /// Load `checkpoint_path` before training and continue from its
  /// saved epoch (bitwise-identical Adam/RNG state). A missing file is
  /// not an error — the run simply starts fresh — but a corrupt or
  /// mismatched checkpoint is reported in `TrainResult::resume_status`
  /// and the run starts fresh from epoch 0.
  bool resume = false;

  // -- Observability --------------------------------------------------------

  /// Optional training-telemetry sink. When set, every healthy epoch is
  /// recorded (loss, val accuracy, pre-clip gradient norm, lr, epoch
  /// time) and every divergence recovery is logged. A pure observer:
  /// attaching it never changes model state, RNG streams or results.
  obs::TelemetryWriter* telemetry = nullptr;
};

/// One divergence-recovery incident during training.
struct RecoveryEvent {
  size_t epoch = 0;           // epoch whose step was rolled back
  std::string reason;         // e.g. "non-finite gradient"
  float new_learning_rate = 0.0f;
};

/// Outcome of one training run.
struct TrainResult {
  double best_val_accuracy = 0.0;
  double test_accuracy = 0.0;
  double train_accuracy = 0.0;
  double final_loss = 0.0;
  size_t epochs_run = 0;
  /// Epochs executed by THIS invocation (epochs_run minus the epochs a
  /// --resume checkpoint already covered). mean_epoch_time_ms averages
  /// over these, since only they were timed by this run.
  size_t epochs_executed = 0;
  double mean_epoch_time_ms = 0.0;
  std::vector<double> loss_history;
  std::vector<double> val_accuracy_history;

  /// Divergence-recovery log (empty for a healthy run).
  std::vector<RecoveryEvent> recoveries;
  /// True when the recovery budget was exhausted and training stopped
  /// on a non-finite state.
  bool diverged = false;
  /// First epoch executed by this run (> 0 after a successful resume).
  size_t resumed_from_epoch = 0;
  /// Outcome of the --resume checkpoint load (OK when not resuming).
  Status resume_status;
  /// Periodic checkpoint writes that failed (the run continues; the
  /// previous checkpoint on disk stays valid).
  size_t checkpoint_write_failures = 0;
};

/// Argmax accuracy of `logits` over nodes with mask > 0.
double MaskedAccuracy(const Tensor& logits,
                      const std::vector<int32_t>& labels,
                      const std::vector<float>& mask);

/// Evaluates the model (training=false) on the given mask.
double EvaluateAccuracy(Model& model, const std::vector<float>& mask,
                        Rng& rng);

/// Full training loop: Adam + early stopping on validation accuracy,
/// with per-epoch NaN/Inf health scans, bounded rollback-and-backoff
/// divergence recovery, and optional crash-safe checkpointing (see
/// TrainOptions).
TrainResult TrainModel(Model& model, const TrainOptions& options);

}  // namespace lasagne

#endif  // LASAGNE_TRAIN_TRAINER_H_
