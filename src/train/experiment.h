#ifndef LASAGNE_TRAIN_EXPERIMENT_H_
#define LASAGNE_TRAIN_EXPERIMENT_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "models/model.h"
#include "train/trainer.h"

namespace lasagne {

/// mean +- population-std summary of repeated trials.
struct Summary {
  double mean = 0.0;
  double std_dev = 0.0;
  size_t count = 0;
};

Summary MeanStd(const std::vector<double>& values);

/// Result of a repeated experiment for one (model, dataset) cell.
struct ExperimentResult {
  Summary test_accuracy;      // in percent, like the paper's tables
  Summary val_accuracy;       // in percent
  Summary epoch_time_ms;      // per-epoch wall clock
  std::vector<double> runs;   // raw per-run test accuracies (percent)

  /// Per-trial isolation bookkeeping: trials that needed at least one
  /// retry (diverged run or construction failure, re-attempted with a
  /// perturbed seed), and trials that failed every attempt — those are
  /// excluded from the summaries instead of killing the whole table.
  size_t retried_trials = 0;
  size_t failed_trials = 0;
  std::vector<std::string> trial_errors;  // one note per failed attempt
};

/// Trains `model_name` on `data` `repeats` times (per-run seeds derived
/// from config.seed) and summarizes the test accuracy, mirroring the
/// paper's "run each method 10 times, report mean and std" protocol.
/// Each trial is isolated: a diverged or unconstructible run is retried
/// (up to 2 extra attempts with perturbed seeds) and, failing that,
/// recorded in `failed_trials`/`trial_errors` while the remaining
/// trials proceed.
ExperimentResult RunRepeatedExperiment(const std::string& model_name,
                                       const Dataset& data,
                                       const ModelConfig& config,
                                       const TrainOptions& options,
                                       size_t repeats);

}  // namespace lasagne

#endif  // LASAGNE_TRAIN_EXPERIMENT_H_
