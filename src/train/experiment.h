#ifndef LASAGNE_TRAIN_EXPERIMENT_H_
#define LASAGNE_TRAIN_EXPERIMENT_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "models/model.h"
#include "train/trainer.h"

namespace lasagne {

/// mean +- population-std summary of repeated trials.
struct Summary {
  double mean = 0.0;
  double std_dev = 0.0;
  size_t count = 0;
};

Summary MeanStd(const std::vector<double>& values);

/// Result of a repeated experiment for one (model, dataset) cell.
struct ExperimentResult {
  Summary test_accuracy;      // in percent, like the paper's tables
  Summary val_accuracy;       // in percent
  Summary epoch_time_ms;      // per-epoch wall clock
  std::vector<double> runs;   // raw per-run test accuracies (percent)
};

/// Trains `model_name` on `data` `repeats` times (per-run seeds derived
/// from config.seed) and summarizes the test accuracy, mirroring the
/// paper's "run each method 10 times, report mean and std" protocol.
ExperimentResult RunRepeatedExperiment(const std::string& model_name,
                                       const Dataset& data,
                                       const ModelConfig& config,
                                       const TrainOptions& options,
                                       size_t repeats);

}  // namespace lasagne

#endif  // LASAGNE_TRAIN_EXPERIMENT_H_
