#include "train/optimizer.h"

#include <cmath>

#include "common/check.h"
#include "common/parallel_config.h"
#include "common/thread_pool.h"
#include "tensor/kernels.h"

namespace lasagne {

void Optimizer::ZeroGrad() {
  for (const ag::Variable& p : params_) p->ZeroGrad();
}

AdamOptimizer::AdamOptimizer(std::vector<ag::Variable> params,
                             float learning_rate, float weight_decay,
                             float beta1, float beta2, float epsilon)
    : Optimizer(std::move(params)),
      learning_rate_(learning_rate),
      weight_decay_(weight_decay),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const ag::Variable& p : params_) {
    m_.emplace_back(p->rows(), p->cols());
    v_.emplace_back(p->rows(), p->cols());
  }
}

AdamState AdamOptimizer::ExportState() const {
  AdamState state;
  state.step_count = step_count_;
  state.m = m_;
  state.v = v_;
  return state;
}

Status AdamOptimizer::ImportState(const AdamState& state) {
  if (state.m.size() != params_.size() ||
      state.v.size() != params_.size()) {
    return InvalidArgumentError(
        "Adam state holds " + std::to_string(state.m.size()) + "/" +
        std::to_string(state.v.size()) + " moment tensors for " +
        std::to_string(params_.size()) + " parameters");
  }
  for (size_t i = 0; i < params_.size(); ++i) {
    if (!state.m[i].SameShape(params_[i]->value()) ||
        !state.v[i].SameShape(params_[i]->value())) {
      return InvalidArgumentError("Adam moment shape mismatch at parameter " +
                                  std::to_string(i));
    }
  }
  step_count_ = state.step_count;
  m_ = state.m;
  v_ = state.v;
  return Status::OK();
}

void AdamOptimizer::Step() {
  ++step_count_;
  const float bias1 =
      1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bias2 =
      1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  for (size_t i = 0; i < params_.size(); ++i) {
    ag::Variable& p = params_[i];
    if (p->grad().empty()) continue;
    Tensor& value = p->mutable_value();
    const Tensor& grad = p->grad();
    float* m = m_[i].data();
    float* v = v_[i].data();
    // Fused elementwise kernel, chunked over the parameter; every
    // element's update is the exact scalar expression sequence, so the
    // result is independent of chunking and thread count.
    ParallelFor(0, value.size(), kGrain, [&](size_t begin, size_t end) {
      kernels::AdamUpdate(value.data() + begin, grad.data() + begin,
                          m + begin, v + begin, end - begin, learning_rate_,
                          weight_decay_, beta1_, beta2_, bias1, bias2,
                          epsilon_);
    });
  }
}

SgdOptimizer::SgdOptimizer(std::vector<ag::Variable> params,
                           float learning_rate, float momentum,
                           float weight_decay)
    : Optimizer(std::move(params)),
      learning_rate_(learning_rate),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  velocity_.reserve(params_.size());
  for (const ag::Variable& p : params_) {
    velocity_.emplace_back(p->rows(), p->cols());
  }
}

void SgdOptimizer::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    ag::Variable& p = params_[i];
    if (p->grad().empty()) continue;
    Tensor& value = p->mutable_value();
    const Tensor& grad = p->grad();
    float* vel = velocity_[i].data();
    for (size_t j = 0; j < value.size(); ++j) {
      const float g = grad.data()[j] + weight_decay_ * value.data()[j];
      vel[j] = momentum_ * vel[j] + g;
      value.data()[j] -= learning_rate_ * vel[j];
    }
  }
}

}  // namespace lasagne
