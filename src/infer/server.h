#ifndef LASAGNE_INFER_SERVER_H_
#define LASAGNE_INFER_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/mpmc_queue.h"
#include "common/status.h"
#include "infer/serving.h"
#include "models/model.h"

namespace lasagne::infer {

/// Per-request serving options.
struct RequestOptions {
  /// Relative deadline in milliseconds from submission; <= 0 means the
  /// server default (ServerOptions::default_deadline_ms), which in turn
  /// may mean "no deadline". Deadlines are enforced twice: a request
  /// whose deadline passed while queued is rejected at dequeue without
  /// a forward pass, and a request that finishes late is delivered but
  /// flagged DEADLINE_EXCEEDED.
  double deadline_ms = 0.0;
};

/// Terminal outcome of one submitted request. Exactly one of these is
/// delivered per Submit call — served, rejected, expired, cancelled or
/// failed — never zero (dropped) and never two.
struct ServeResult {
  /// OK                  — served within deadline; `logits` valid.
  /// DEADLINE_EXCEEDED   — expired in queue (no logits) or finished
  ///                       late (`has_logits` true: delivered, flagged).
  /// RESOURCE_EXHAUSTED  — rejected at admission, queue full;
  ///                       `retry_after_ms` carries the backoff hint.
  /// UNAVAILABLE         — rejected, server shutting down.
  /// INVALID_ARGUMENT    — empty batch / out-of-range node id.
  /// CANCELLED           — shutdown(kCancelPending) drained it unserved.
  /// INTERNAL            — worker failure (fault injection / defect).
  Status status;
  /// (num query nodes x num_classes) logits or probabilities; rows in
  /// query order. Valid iff `has_logits`.
  Tensor logits;
  bool has_logits = false;
  /// Worker that executed the forward pass; -1 when none did.
  int worker = -1;
  /// Number of requests coalesced into the forward pass that served
  /// this one (1 = no coalescing; 0 when no forward pass ran).
  size_t batch_requests = 0;
  double queue_ms = 0.0;    // submission -> dequeue
  double compute_ms = 0.0;  // forward + gather of the coalesced batch
  double total_ms = 0.0;    // submission -> resolution
  /// On RESOURCE_EXHAUSTED: suggested client backoff before retrying,
  /// derived from queue depth and recent batch latency.
  double retry_after_ms = 0.0;
};

namespace internal {
struct ServeFutureState;
}  // namespace internal

/// One-shot completion handle for a submitted request. Copyable;
/// Wait/WaitFor may be called from any thread. A default-constructed
/// future is invalid.
class ServeFuture {
 public:
  ServeFuture() = default;

  bool valid() const { return state_ != nullptr; }
  /// True once the terminal ServeResult is available (non-blocking).
  bool ready() const;
  /// Blocks until resolved, then returns the result (stable reference,
  /// valid for the future's lifetime).
  const ServeResult& Wait() const;
  /// Bounded wait; true when resolved within `timeout_ms`.
  bool WaitFor(double timeout_ms) const;

 private:
  friend class InferenceServer;
  explicit ServeFuture(std::shared_ptr<internal::ServeFutureState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<internal::ServeFutureState> state_;
};

/// Configuration for an InferenceServer.
struct ServerOptions {
  size_t num_workers = 2;
  /// Bound of the MPMC request queue. Submissions beyond it are
  /// rejected with RESOURCE_EXHAUSTED (admission control) instead of
  /// blocking the producer.
  size_t queue_capacity = 64;
  /// Cross-request batching: after dequeuing a request, a worker keeps
  /// collecting requests for up to this window (and immediately
  /// coalesces any backlog already queued), then serves the group with
  /// one forward pass. 0 = opportunistic backlog coalescing only.
  double batch_window_ms = 0.0;
  /// Max requests coalesced into one forward pass (1 = no coalescing).
  size_t max_batch_requests = 8;
  /// Default relative deadline applied when RequestOptions carries
  /// none; <= 0 = no deadline.
  double default_deadline_ms = 0.0;
  /// Row-softmax served logits into class probabilities.
  bool softmax_outputs = false;
  /// Base RNG seed; worker w serves with seed + w (eval-mode forwards
  /// consume no randomness, see ServeOptions::seed).
  uint64_t seed = 1;
  /// When false the server is constructed stopped: requests can be
  /// staged into the queue deterministically and no worker runs until
  /// Start() (or Shutdown(), which starts workers to drain). Tests use
  /// this to exercise queue-full admission and deadline-at-dequeue
  /// without racing the workers.
  bool autostart = true;
};

/// Shutdown behavior for in-queue requests (in-flight forward passes
/// always run to completion either way).
enum class DrainMode {
  /// Serve everything already admitted (deadline checks still apply).
  kDrain,
  /// Resolve queued-but-unstarted requests with CANCELLED.
  kCancelPending,
};

/// Merged server statistics (Snapshot()). Worker-side fields are
/// aggregated from the shared-nothing per-worker blocks at scrape time.
struct ServerStats {
  // Admission (producer side).
  uint64_t submitted = 0;            // every Submit call
  uint64_t accepted = 0;             // entered the queue
  uint64_t rejected_queue_full = 0;  // RESOURCE_EXHAUSTED
  uint64_t rejected_shutdown = 0;    // UNAVAILABLE
  uint64_t rejected_invalid = 0;     // INVALID_ARGUMENT

  // Worker side.
  uint64_t served_ok = 0;
  uint64_t expired_at_dequeue = 0;    // DEADLINE_EXCEEDED, no forward pass
  uint64_t late_at_completion = 0;    // DEADLINE_EXCEEDED, logits delivered
  uint64_t cancelled = 0;             // CANCELLED at shutdown
  uint64_t failed = 0;                // INTERNAL worker failures
  uint64_t batches = 0;               // forward passes executed
  uint64_t coalesced_requests = 0;    // requests served by those passes
  double total_queue_ms = 0.0;        // summed over dequeued requests

  /// Per-request end-to-end latency / pool stats of requests that went
  /// through a forward pass (served_ok + late_at_completion).
  ServeStats serve;

  /// Requests that have reached a terminal outcome.
  uint64_t TerminalOutcomes() const {
    return rejected_queue_full + rejected_shutdown + rejected_invalid +
           served_ok + expired_at_dequeue + late_at_completion + cancelled +
           failed;
  }
  /// After Shutdown: true iff every submitted request got exactly one
  /// terminal outcome (the zero-drop invariant the tests and the bench
  /// regression gate enforce).
  bool Accounted() const { return TerminalOutcomes() == submitted; }
};

/// Builds the model a worker serves with. Called once per worker at
/// construction time; workers are shared-nothing, so each gets its own
/// instance (Model::Forward mutates per-model scratch state).
using ModelFactory = std::function<std::unique_ptr<Model>(size_t worker)>;

/// Resilient concurrent serving front end around the forward-only
/// inference path (docs/SERVING.md).
///
/// Producers Submit() query-node batches into a bounded MPMC queue and
/// get a ServeFuture; N worker threads each own a private Model (same
/// seed => identical parameters) and per-worker ServeStats, dequeue
/// requests, coalesce those arriving within the batching window into
/// one forward pass, and resolve every future with exactly one
/// terminal outcome. Overload never blocks producers (queue-full =>
/// immediate RESOURCE_EXHAUSTED with a retry-after hint) and shutdown
/// is deterministic: every admitted request is either served or
/// CANCELLED, never dropped. Workers run their forwards inside a
/// ParallelRegionGuard, so inner kernels execute inline and serial —
/// worker-level concurrency scales across cores without oversubscribing
/// the shared pool, and each worker's arithmetic matches a
/// single-threaded run bit for bit (docs/THREADING.md).
class InferenceServer {
 public:
  InferenceServer(ModelFactory factory, ServerOptions options = {});
  /// Convenience: one `model_name` model per worker over `data` (which
  /// must outlive the server).
  InferenceServer(const std::string& model_name, const Dataset& data,
                  const ModelConfig& config, ServerOptions options = {});
  /// Runs Shutdown(kDrain) if the server is still accepting work.
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Starts the worker threads (no-op when already started). Only
  /// needed with ServerOptions::autostart = false.
  void Start();

  /// Admits one request. Never blocks: returns a future that is either
  /// queued for a worker or already resolved with the rejection
  /// (RESOURCE_EXHAUSTED / UNAVAILABLE / INVALID_ARGUMENT).
  ServeFuture Submit(std::vector<uint32_t> query_nodes,
                     RequestOptions request = {});

  /// Stops admission, resolves every queued request per `mode`, joins
  /// the workers. Idempotent; only the first call's mode applies. If
  /// the server was never Start()ed, workers are started to perform the
  /// drain, so the outcome is deterministic either way.
  void Shutdown(DrainMode mode = DrainMode::kDrain);

  /// Merged statistics. Safe to call at any time; per-worker blocks are
  /// read under their own locks (scrapes contend with at most one
  /// worker each, never serialize workers against each other).
  ServerStats Snapshot() const;

  size_t queue_depth() const { return queue_.size(); }
  size_t queue_capacity() const { return queue_.capacity(); }
  size_t num_workers() const { return workers_.size(); }

 private:
  struct Request {
    std::shared_ptr<internal::ServeFutureState> state;
    std::vector<uint32_t> nodes;
    std::chrono::steady_clock::time_point submit_time;
    std::chrono::steady_clock::time_point deadline;  // max() = none
    bool has_deadline = false;
  };

  /// Shared-nothing per-worker block: the worker thread is the only
  /// writer; `mutex` lets Snapshot read a consistent view.
  struct Worker {
    std::unique_ptr<Model> model;
    Rng rng{1};
    std::thread thread;

    mutable std::mutex mutex;  // guards the stats below
    ServeStats serve;
    uint64_t served_ok = 0;
    uint64_t expired_at_dequeue = 0;
    uint64_t late_at_completion = 0;
    uint64_t cancelled = 0;
    uint64_t failed = 0;
    uint64_t batches = 0;
    uint64_t coalesced_requests = 0;
    double total_queue_ms = 0.0;
  };

  void WorkerLoop(size_t worker_index);
  /// Runs one coalesced batch on `worker`: forward + gather + resolve.
  void ServeBatchOnWorker(size_t worker_index,
                          std::vector<Request>& batch);
  void UpdateQueueDepthGauge() const;
  double RetryAfterHintMs() const;

  ServerOptions options_;
  BoundedMpmcQueue<Request> queue_;
  std::vector<std::unique_ptr<Worker>> workers_;

  std::mutex lifecycle_mutex_;  // guards Start/Shutdown transitions
  bool started_ = false;
  bool shutdown_ = false;
  std::atomic<bool> cancel_pending_{false};

  // Admission counters (producer threads).
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_queue_full_{0};
  std::atomic<uint64_t> rejected_shutdown_{0};
  std::atomic<uint64_t> rejected_invalid_{0};

  /// EWMA of recent batch compute time, feeding the retry-after hint.
  std::atomic<double> ewma_batch_ms_{1.0};
};

}  // namespace lasagne::infer

#endif  // LASAGNE_INFER_SERVER_H_
