#ifndef LASAGNE_INFER_SERVING_H_
#define LASAGNE_INFER_SERVING_H_

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/status.h"
#include "models/model.h"
#include "obs/metrics.h"
#include "tensor/rng.h"

namespace lasagne::infer {

/// Serving configuration for an InferenceSession.
struct ServeOptions {
  /// Row-softmax the gathered logits into class probabilities.
  bool softmax_outputs = false;
  /// RNG seed for the eval-mode forward context. Evaluation-mode
  /// forwards consume no randomness (dropout / stochastic aggregation
  /// / DropEdge are all training-only), so this only matters if a
  /// future model samples at inference time.
  uint64_t seed = 1;
};

/// Aggregate statistics over the requests a session (or one serving
/// worker; see infer::InferenceServer) has served.
///
/// Memory is bounded for long-running servers: per-request latencies
/// land in a `kLatencyReservoir`-sample decimating reservoir (every
/// sample while the run is short, then a deterministic every-2nd /
/// every-4th / ... systematic subsample — no RNG) and additionally in
/// log2-scale buckets (the same bucketing as obs::Histogram). While
/// the reservoir still holds every sample — i.e. any test-sized run —
/// percentiles are exact; past that point they are estimated from the
/// subsampled reservoir, clamped to the observed [min, max].
struct ServeStats {
  /// Reservoir capacity (32 KiB of doubles — the cap that replaced the
  /// one-double-per-request-forever growth of the original
  /// `latency_ms` vector).
  static constexpr size_t kLatencyReservoir = 4096;

  uint64_t requests = 0;
  uint64_t nodes_served = 0;
  double total_latency_ms = 0.0;
  double min_latency_ms = 0.0;
  double max_latency_ms = 0.0;
  /// Systematic subsample of per-request latencies in arrival order:
  /// every `reservoir_stride`-th request (by arrival index), capped at
  /// kLatencyReservoir. stride 1 while requests <= capacity.
  std::vector<double> latency_reservoir;
  uint64_t reservoir_stride = 1;
  /// All latencies, log2-bucketed (obs::Histogram::BucketFor).
  std::array<uint64_t, obs::Histogram::kBuckets> latency_buckets{};

  /// Wall-clock serving window: steady-clock time (ms since the
  /// steady epoch) of the earliest request start and latest request
  /// completion this block has seen. Merge takes the union, so
  /// merged multi-worker stats report throughput over real elapsed
  /// time instead of double-counting overlapping per-request
  /// latencies. Sentinels (+inf / -inf) until the first record.
  double window_begin_ms = std::numeric_limits<double>::infinity();
  double window_end_ms = -std::numeric_limits<double>::infinity();

  /// BufferPool activity attributed to served requests (deltas of the
  /// *calling thread's* pool counters across each ServeBatch call, so
  /// concurrent workers never attribute each other's allocations).
  /// After a warm-up request has populated the pool buckets — or a
  /// compiled execution plan serves from its workspace — steady-state
  /// requests should be (almost) miss-free.
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;

  /// Accounts one served request of `latency_ms` milliseconds that
  /// completed "now" (steady clock).
  void RecordLatency(double latency_ms);

  /// Accounts one served request that completed at `end_steady_ms`
  /// (std::chrono::steady_clock milliseconds since its epoch). The
  /// request's start is taken as `end_steady_ms - latency_ms` for the
  /// wall-clock window.
  void RecordLatencyAt(double latency_ms, double end_steady_ms);

  /// Folds another stats block into this one (scrape-time merging of
  /// shared-nothing per-worker stats). Counters, buckets and the
  /// wall-clock window merge exactly; when the combined reservoirs
  /// exceed kLatencyReservoir, each side contributes a deterministic
  /// evenly-strided subsample proportional to its request count, so
  /// no worker's tail is dropped just because it merged later.
  void Merge(const ServeStats& other);

  double MeanLatencyMs() const;
  /// Latency percentile (q in [0, 1]) over the served requests; 0 when
  /// no request has completed. Exact (sorts a reservoir copy) while
  /// requests <= reservoir size; beyond that, estimated from the
  /// decimated reservoir (bucket estimate only if the reservoir is
  /// somehow empty), clamped to [min, max].
  double LatencyPercentileMs(double q) const;
  /// Requests per second of wall-clock serving time:
  /// requests / (window_end - window_begin). Concurrent workers'
  /// overlapping requests count once, not once per worker. Falls back
  /// to requests / total_latency when the window is degenerate (a
  /// single request, or hand-built stats without timestamps).
  double Qps() const;
};

/// Forward-only serving driver: executes repeated tape-free forward
/// passes (Model::Predict) over batches of query nodes, reusing
/// BufferPool storage across requests.
///
/// The zoo's models are full-graph ("transductive") classifiers, so a
/// request runs one full forward pass and gathers the rows of the
/// requested query nodes; batching queries amortizes that pass. The
/// session is a pure reader of the model: it never touches parameters,
/// gradients or hidden-state analysis, and it owns a private Rng so
/// serving interleaved with training cannot perturb a training RNG
/// stream. Not thread-safe; use one session per serving thread.
class InferenceSession {
 public:
  explicit InferenceSession(Model& model, ServeOptions options = {});

  /// Serves one batch: logits (or probabilities, see
  /// ServeOptions::softmax_outputs) for the given query nodes as a
  /// (batch x num_classes) tensor, row i belonging to query_nodes[i].
  /// Duplicate ids are allowed. InvalidArgument on an empty batch or an
  /// out-of-range node id.
  StatusOr<Tensor> ServeBatch(const std::vector<uint32_t>& query_nodes);

  /// Convenience: full-graph logits for all N nodes (one request).
  Tensor ServeAll();

  const ServeStats& stats() const { return stats_; }
  void ResetStats();

 private:
  Model& model_;
  ServeOptions options_;
  Rng rng_;
  ServeStats stats_;
};

}  // namespace lasagne::infer

#endif  // LASAGNE_INFER_SERVING_H_
