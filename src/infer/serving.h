#ifndef LASAGNE_INFER_SERVING_H_
#define LASAGNE_INFER_SERVING_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "models/model.h"
#include "obs/metrics.h"
#include "tensor/rng.h"

namespace lasagne::infer {

/// Serving configuration for an InferenceSession.
struct ServeOptions {
  /// Row-softmax the gathered logits into class probabilities.
  bool softmax_outputs = false;
  /// RNG seed for the eval-mode forward context. Evaluation-mode
  /// forwards consume no randomness (dropout / stochastic aggregation
  /// / DropEdge are all training-only), so this only matters if a
  /// future model samples at inference time.
  uint64_t seed = 1;
};

/// Aggregate statistics over the requests a session (or one serving
/// worker; see infer::InferenceServer) has served.
///
/// Memory is bounded for long-running servers: the first
/// `kLatencyReservoir` per-request latencies are kept exactly, and
/// every latency additionally lands in log2-scale buckets (the same
/// bucketing as obs::Histogram). While the reservoir still holds every
/// sample — i.e. any test-sized run — percentiles are exact; past that
/// point they fall back to the bucket estimate, clamped to the observed
/// [min, max].
struct ServeStats {
  /// Exact samples retained before falling back to buckets (32 KiB of
  /// doubles — the cap that replaced the one-double-per-request-forever
  /// growth of the original `latency_ms` vector).
  static constexpr size_t kLatencyReservoir = 4096;

  uint64_t requests = 0;
  uint64_t nodes_served = 0;
  double total_latency_ms = 0.0;
  double min_latency_ms = 0.0;
  double max_latency_ms = 0.0;
  /// First kLatencyReservoir per-request latencies, in arrival order.
  std::vector<double> latency_reservoir;
  /// All latencies, log2-bucketed (obs::Histogram::BucketFor).
  std::array<uint64_t, obs::Histogram::kBuckets> latency_buckets{};

  /// BufferPool activity attributed to served requests (deltas of the
  /// global pool counters across each ServeBatch call). After a warm-up
  /// request has populated the pool buckets, steady-state requests
  /// should be (almost) miss-free — the serving analogue of the
  /// warm-epoch behavior in tests/buffer_pool_test.cc.
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;

  /// Accounts one served request of `latency_ms` milliseconds.
  void RecordLatency(double latency_ms);

  /// Folds another stats block into this one (scrape-time merging of
  /// shared-nothing per-worker stats). Reservoir samples are kept up to
  /// kLatencyReservoir; buckets and counters always merge exactly.
  void Merge(const ServeStats& other);

  double MeanLatencyMs() const;
  /// Latency percentile (q in [0, 1]) over the served requests; 0 when
  /// no request has completed. Exact (sorts a reservoir copy) while
  /// requests <= kLatencyReservoir, bucket-estimated beyond.
  double LatencyPercentileMs(double q) const;
  /// Requests per second of pure serving time (excludes caller think
  /// time): requests / total_latency.
  double Qps() const;
};

/// Forward-only serving driver: executes repeated tape-free forward
/// passes (Model::Predict) over batches of query nodes, reusing
/// BufferPool storage across requests.
///
/// The zoo's models are full-graph ("transductive") classifiers, so a
/// request runs one full forward pass and gathers the rows of the
/// requested query nodes; batching queries amortizes that pass. The
/// session is a pure reader of the model: it never touches parameters,
/// gradients or hidden-state analysis, and it owns a private Rng so
/// serving interleaved with training cannot perturb a training RNG
/// stream. Not thread-safe; use one session per serving thread.
class InferenceSession {
 public:
  explicit InferenceSession(Model& model, ServeOptions options = {});

  /// Serves one batch: logits (or probabilities, see
  /// ServeOptions::softmax_outputs) for the given query nodes as a
  /// (batch x num_classes) tensor, row i belonging to query_nodes[i].
  /// Duplicate ids are allowed. InvalidArgument on an empty batch or an
  /// out-of-range node id.
  StatusOr<Tensor> ServeBatch(const std::vector<uint32_t>& query_nodes);

  /// Convenience: full-graph logits for all N nodes (one request).
  Tensor ServeAll();

  const ServeStats& stats() const { return stats_; }
  void ResetStats();

 private:
  Model& model_;
  ServeOptions options_;
  Rng rng_;
  ServeStats stats_;
};

}  // namespace lasagne::infer

#endif  // LASAGNE_INFER_SERVING_H_
