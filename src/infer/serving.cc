#include "infer/serving.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "autograd/ops.h"
#include "common/buffer_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lasagne::infer {

namespace {

double NowSteadyMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Deterministic evenly-strided subsample of `k` elements preserving
/// arrival order: element i of the result is source index i*n/k.
std::vector<double> Subsample(const std::vector<double>& source, size_t k) {
  if (k >= source.size()) return source;
  std::vector<double> out;
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    out.push_back(source[i * source.size() / k]);
  }
  return out;
}

}  // namespace

void ServeStats::RecordLatency(double latency_ms) {
  RecordLatencyAt(latency_ms, NowSteadyMs());
}

void ServeStats::RecordLatencyAt(double latency_ms, double end_steady_ms) {
  if (requests == 0) {
    min_latency_ms = latency_ms;
    max_latency_ms = latency_ms;
  } else {
    min_latency_ms = std::min(min_latency_ms, latency_ms);
    max_latency_ms = std::max(max_latency_ms, latency_ms);
  }
  const uint64_t arrival = requests;  // 0-based arrival index
  ++requests;
  total_latency_ms += latency_ms;
  window_begin_ms = std::min(window_begin_ms, end_steady_ms - latency_ms);
  window_end_ms = std::max(window_end_ms, end_steady_ms);
  if (arrival % reservoir_stride == 0) {
    if (latency_reservoir.size() >= kLatencyReservoir) {
      // Decimate: keep every 2nd sample (arrival indices divisible by
      // the doubled stride) and coarsen the stride. Deterministic, no
      // RNG, and the kept samples stay evenly spread over the run.
      std::vector<double> kept;
      kept.reserve((latency_reservoir.size() + 1) / 2);
      for (size_t i = 0; i < latency_reservoir.size(); i += 2) {
        kept.push_back(latency_reservoir[i]);
      }
      latency_reservoir = std::move(kept);
      reservoir_stride *= 2;
      if (arrival % reservoir_stride != 0) {
        ++latency_buckets[obs::Histogram::BucketFor(latency_ms)];
        return;
      }
    }
    latency_reservoir.push_back(latency_ms);
  }
  ++latency_buckets[obs::Histogram::BucketFor(latency_ms)];
}

void ServeStats::Merge(const ServeStats& other) {
  const uint64_t self_requests = requests;
  if (other.requests > 0) {
    if (requests == 0) {
      min_latency_ms = other.min_latency_ms;
      max_latency_ms = other.max_latency_ms;
    } else {
      min_latency_ms = std::min(min_latency_ms, other.min_latency_ms);
      max_latency_ms = std::max(max_latency_ms, other.max_latency_ms);
    }
  }
  requests += other.requests;
  nodes_served += other.nodes_served;
  total_latency_ms += other.total_latency_ms;
  pool_hits += other.pool_hits;
  pool_misses += other.pool_misses;
  // Union of serving windows (infinity sentinels are identities).
  window_begin_ms = std::min(window_begin_ms, other.window_begin_ms);
  window_end_ms = std::max(window_end_ms, other.window_end_ms);
  // Reservoir merge: when the combined samples overflow the cap, each
  // side contributes in proportion to the requests it actually served
  // (deterministic even stride, arrival order preserved) — merging
  // first no longer means owning the whole reservoir.
  if (latency_reservoir.size() + other.latency_reservoir.size() <=
      kLatencyReservoir) {
    latency_reservoir.insert(latency_reservoir.end(),
                             other.latency_reservoir.begin(),
                             other.latency_reservoir.end());
  } else {
    const uint64_t total = self_requests + other.requests;
    size_t self_quota =
        total > 0 ? static_cast<size_t>(kLatencyReservoir * self_requests /
                                        total)
                  : kLatencyReservoir / 2;
    size_t other_quota = kLatencyReservoir - self_quota;
    // Redistribute quota a side cannot fill.
    if (self_quota > latency_reservoir.size()) {
      other_quota += self_quota - latency_reservoir.size();
      self_quota = latency_reservoir.size();
    }
    if (other_quota > other.latency_reservoir.size()) {
      self_quota = std::min(latency_reservoir.size(),
                            self_quota + other_quota -
                                other.latency_reservoir.size());
      other_quota = other.latency_reservoir.size();
    }
    latency_reservoir = Subsample(latency_reservoir, self_quota);
    const std::vector<double> merged_in =
        Subsample(other.latency_reservoir, other_quota);
    latency_reservoir.insert(latency_reservoir.end(), merged_in.begin(),
                             merged_in.end());
  }
  reservoir_stride = std::max(reservoir_stride, other.reservoir_stride);
  for (size_t i = 0; i < latency_buckets.size(); ++i) {
    latency_buckets[i] += other.latency_buckets[i];
  }
}

double ServeStats::MeanLatencyMs() const {
  return requests > 0 ? total_latency_ms / static_cast<double>(requests)
                      : 0.0;
}

double ServeStats::LatencyPercentileMs(double q) const {
  if (requests == 0) return 0.0;
  const double clamped = std::min(std::max(q, 0.0), 1.0);
  if (!latency_reservoir.empty()) {
    // Exact while every sample is present; otherwise a rank estimate
    // over the decimated (still representative) reservoir, clamped to
    // the exact observed range.
    const bool exact = requests <= latency_reservoir.size();
    std::vector<double> sorted = latency_reservoir;
    std::sort(sorted.begin(), sorted.end());
    const double rank =
        std::ceil(clamped * static_cast<double>(sorted.size()));
    const size_t index = rank < 1.0 ? 0 : static_cast<size_t>(rank) - 1;
    const double value = sorted[std::min(index, sorted.size() - 1)];
    if (exact) return value;
    return std::min(std::max(value, min_latency_ms), max_latency_ms);
  }
  // Bucket estimate (upper edge of the target bucket), clamped to the
  // observed range so p0/p100 stay meaningful.
  const double target = clamped * static_cast<double>(requests);
  uint64_t running = 0;
  double estimate = max_latency_ms;
  for (size_t i = 0; i < latency_buckets.size(); ++i) {
    running += latency_buckets[i];
    if (static_cast<double>(running) >= target && latency_buckets[i] > 0) {
      estimate = i + 1 < obs::Histogram::kBuckets
                     ? obs::Histogram::BucketLowerEdge(i + 1)
                     : max_latency_ms;
      break;
    }
  }
  return std::min(std::max(estimate, min_latency_ms), max_latency_ms);
}

double ServeStats::Qps() const {
  if (requests == 0) return 0.0;
  const double span_ms = window_end_ms - window_begin_ms;
  if (span_ms > 0.0 && std::isfinite(span_ms)) {
    return static_cast<double>(requests) / (span_ms / 1000.0);
  }
  // Degenerate window: a single instantaneous request, or stats built
  // without timestamps. Summed latency is the best signal left.
  return total_latency_ms > 0.0
             ? static_cast<double>(requests) / (total_latency_ms / 1000.0)
             : 0.0;
}

InferenceSession::InferenceSession(Model& model, ServeOptions options)
    : model_(model), options_(options), rng_(options.seed) {}

void InferenceSession::ResetStats() { stats_ = ServeStats{}; }

StatusOr<Tensor> InferenceSession::ServeBatch(
    const std::vector<uint32_t>& query_nodes) {
  if (query_nodes.empty()) {
    return Status(StatusCode::kInvalidArgument, "empty query batch");
  }
  const size_t num_nodes = model_.data().num_nodes();
  std::vector<size_t> rows;
  rows.reserve(query_nodes.size());
  for (uint32_t id : query_nodes) {
    if (id >= num_nodes) {
      return Status(StatusCode::kInvalidArgument,
                    "query node " + std::to_string(id) +
                        " out of range [0, " + std::to_string(num_nodes) +
                        ")");
    }
    rows.push_back(id);
  }

  LASAGNE_TRACE_SCOPE("infer.request");
  // Per-thread counters: a concurrent worker's allocations can never
  // land in this request's before/after delta (the global-stats delta
  // used previously attributed every thread's traffic to whichever
  // requests happened to be in flight). The counters are monotonic
  // across BufferPool::ResetStats() — see the contract in
  // buffer_pool.h — so this delta stays exact regardless of who resets
  // the global stats mid-run. With the sharded pool a warm session's
  // hits here are magazine hits: same-thread acquire/release cycles
  // never touch the depot mutex.
  const BufferPool::ThreadStats pool_before = BufferPool::GetThreadStats();
  const auto start = std::chrono::steady_clock::now();

  nn::ForwardContext ctx{/*training=*/false, &rng_};
  Tensor logits = model_.Predict(ctx);
  Tensor out = logits.GatherRows(rows);
  if (options_.softmax_outputs) out = ag::SoftmaxRows(out);

  const auto end = std::chrono::steady_clock::now();
  const double latency_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  const BufferPool::ThreadStats pool_after = BufferPool::GetThreadStats();

  stats_.RecordLatencyAt(
      latency_ms,
      std::chrono::duration<double, std::milli>(end.time_since_epoch())
          .count());
  stats_.nodes_served += query_nodes.size();
  stats_.pool_hits += pool_after.hits - pool_before.hits;
  stats_.pool_misses += pool_after.misses - pool_before.misses;

  if (obs::MetricsEnabled()) {
    static obs::Counter& requests =
        obs::MetricsRegistry::Global().GetCounter("infer.requests");
    static obs::Counter& nodes =
        obs::MetricsRegistry::Global().GetCounter("infer.nodes_served");
    static obs::Histogram& latency =
        obs::MetricsRegistry::Global().GetHistogram("infer.request_ms");
    requests.Increment();
    nodes.Increment(query_nodes.size());
    latency.Record(latency_ms);
  }
  return out;
}

Tensor InferenceSession::ServeAll() {
  std::vector<uint32_t> all(model_.data().num_nodes());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<uint32_t>(i);
  StatusOr<Tensor> result = ServeBatch(all);
  LASAGNE_CHECK_MSG(result.ok(), result.status().ToString());
  return std::move(result).value();
}

}  // namespace lasagne::infer
