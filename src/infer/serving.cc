#include "infer/serving.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "autograd/ops.h"
#include "common/buffer_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lasagne::infer {

double ServeStats::MeanLatencyMs() const {
  return requests > 0 ? total_latency_ms / static_cast<double>(requests)
                      : 0.0;
}

double ServeStats::LatencyPercentileMs(double q) const {
  if (latency_ms.empty()) return 0.0;
  std::vector<double> sorted = latency_ms;
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::min(std::max(q, 0.0), 1.0);
  const double rank = std::ceil(clamped * static_cast<double>(sorted.size()));
  const size_t index = rank < 1.0 ? 0 : static_cast<size_t>(rank) - 1;
  return sorted[std::min(index, sorted.size() - 1)];
}

double ServeStats::Qps() const {
  return total_latency_ms > 0.0
             ? static_cast<double>(requests) / (total_latency_ms / 1000.0)
             : 0.0;
}

InferenceSession::InferenceSession(Model& model, ServeOptions options)
    : model_(model), options_(options), rng_(options.seed) {}

void InferenceSession::ResetStats() { stats_ = ServeStats{}; }

StatusOr<Tensor> InferenceSession::ServeBatch(
    const std::vector<uint32_t>& query_nodes) {
  if (query_nodes.empty()) {
    return Status(StatusCode::kInvalidArgument, "empty query batch");
  }
  const size_t num_nodes = model_.data().num_nodes();
  std::vector<size_t> rows;
  rows.reserve(query_nodes.size());
  for (uint32_t id : query_nodes) {
    if (id >= num_nodes) {
      return Status(StatusCode::kInvalidArgument,
                    "query node " + std::to_string(id) +
                        " out of range [0, " + std::to_string(num_nodes) +
                        ")");
    }
    rows.push_back(id);
  }

  LASAGNE_TRACE_SCOPE("infer.request");
  const BufferPool::Stats pool_before = BufferPool::Global().GetStats();
  const auto start = std::chrono::steady_clock::now();

  nn::ForwardContext ctx{/*training=*/false, &rng_};
  Tensor logits = model_.Predict(ctx);
  Tensor out = logits.GatherRows(rows);
  if (options_.softmax_outputs) out = ag::SoftmaxRows(out);

  const auto end = std::chrono::steady_clock::now();
  const double latency_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  const BufferPool::Stats pool_after = BufferPool::Global().GetStats();

  ++stats_.requests;
  stats_.nodes_served += query_nodes.size();
  stats_.total_latency_ms += latency_ms;
  stats_.latency_ms.push_back(latency_ms);
  stats_.pool_hits += pool_after.hits - pool_before.hits;
  stats_.pool_misses += pool_after.misses - pool_before.misses;

  if (obs::MetricsEnabled()) {
    static obs::Counter& requests =
        obs::MetricsRegistry::Global().GetCounter("infer.requests");
    static obs::Counter& nodes =
        obs::MetricsRegistry::Global().GetCounter("infer.nodes_served");
    static obs::Histogram& latency =
        obs::MetricsRegistry::Global().GetHistogram("infer.request_ms");
    requests.Increment();
    nodes.Increment(query_nodes.size());
    latency.Record(latency_ms);
  }
  return out;
}

Tensor InferenceSession::ServeAll() {
  std::vector<uint32_t> all(model_.data().num_nodes());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<uint32_t>(i);
  StatusOr<Tensor> result = ServeBatch(all);
  LASAGNE_CHECK_MSG(result.ok(), result.status().ToString());
  return std::move(result).value();
}

}  // namespace lasagne::infer
