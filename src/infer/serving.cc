#include "infer/serving.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "autograd/ops.h"
#include "common/buffer_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lasagne::infer {

void ServeStats::RecordLatency(double latency_ms) {
  if (requests == 0) {
    min_latency_ms = latency_ms;
    max_latency_ms = latency_ms;
  } else {
    min_latency_ms = std::min(min_latency_ms, latency_ms);
    max_latency_ms = std::max(max_latency_ms, latency_ms);
  }
  ++requests;
  total_latency_ms += latency_ms;
  if (latency_reservoir.size() < kLatencyReservoir) {
    latency_reservoir.push_back(latency_ms);
  }
  ++latency_buckets[obs::Histogram::BucketFor(latency_ms)];
}

void ServeStats::Merge(const ServeStats& other) {
  if (other.requests > 0) {
    if (requests == 0) {
      min_latency_ms = other.min_latency_ms;
      max_latency_ms = other.max_latency_ms;
    } else {
      min_latency_ms = std::min(min_latency_ms, other.min_latency_ms);
      max_latency_ms = std::max(max_latency_ms, other.max_latency_ms);
    }
  }
  requests += other.requests;
  nodes_served += other.nodes_served;
  total_latency_ms += other.total_latency_ms;
  pool_hits += other.pool_hits;
  pool_misses += other.pool_misses;
  for (double sample : other.latency_reservoir) {
    if (latency_reservoir.size() >= kLatencyReservoir) break;
    latency_reservoir.push_back(sample);
  }
  for (size_t i = 0; i < latency_buckets.size(); ++i) {
    latency_buckets[i] += other.latency_buckets[i];
  }
}

double ServeStats::MeanLatencyMs() const {
  return requests > 0 ? total_latency_ms / static_cast<double>(requests)
                      : 0.0;
}

double ServeStats::LatencyPercentileMs(double q) const {
  if (requests == 0) return 0.0;
  const double clamped = std::min(std::max(q, 0.0), 1.0);
  if (requests <= latency_reservoir.size()) {
    // Every sample is in the reservoir: exact.
    std::vector<double> sorted = latency_reservoir;
    std::sort(sorted.begin(), sorted.end());
    const double rank =
        std::ceil(clamped * static_cast<double>(sorted.size()));
    const size_t index = rank < 1.0 ? 0 : static_cast<size_t>(rank) - 1;
    return sorted[std::min(index, sorted.size() - 1)];
  }
  // Bucket estimate (upper edge of the target bucket), clamped to the
  // observed range so p0/p100 stay meaningful.
  const double target = clamped * static_cast<double>(requests);
  uint64_t running = 0;
  double estimate = max_latency_ms;
  for (size_t i = 0; i < latency_buckets.size(); ++i) {
    running += latency_buckets[i];
    if (static_cast<double>(running) >= target && latency_buckets[i] > 0) {
      estimate = i + 1 < obs::Histogram::kBuckets
                     ? obs::Histogram::BucketLowerEdge(i + 1)
                     : max_latency_ms;
      break;
    }
  }
  return std::min(std::max(estimate, min_latency_ms), max_latency_ms);
}

double ServeStats::Qps() const {
  return total_latency_ms > 0.0
             ? static_cast<double>(requests) / (total_latency_ms / 1000.0)
             : 0.0;
}

InferenceSession::InferenceSession(Model& model, ServeOptions options)
    : model_(model), options_(options), rng_(options.seed) {}

void InferenceSession::ResetStats() { stats_ = ServeStats{}; }

StatusOr<Tensor> InferenceSession::ServeBatch(
    const std::vector<uint32_t>& query_nodes) {
  if (query_nodes.empty()) {
    return Status(StatusCode::kInvalidArgument, "empty query batch");
  }
  const size_t num_nodes = model_.data().num_nodes();
  std::vector<size_t> rows;
  rows.reserve(query_nodes.size());
  for (uint32_t id : query_nodes) {
    if (id >= num_nodes) {
      return Status(StatusCode::kInvalidArgument,
                    "query node " + std::to_string(id) +
                        " out of range [0, " + std::to_string(num_nodes) +
                        ")");
    }
    rows.push_back(id);
  }

  LASAGNE_TRACE_SCOPE("infer.request");
  const BufferPool::Stats pool_before = BufferPool::Global().GetStats();
  const auto start = std::chrono::steady_clock::now();

  nn::ForwardContext ctx{/*training=*/false, &rng_};
  Tensor logits = model_.Predict(ctx);
  Tensor out = logits.GatherRows(rows);
  if (options_.softmax_outputs) out = ag::SoftmaxRows(out);

  const auto end = std::chrono::steady_clock::now();
  const double latency_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  const BufferPool::Stats pool_after = BufferPool::Global().GetStats();

  stats_.RecordLatency(latency_ms);
  stats_.nodes_served += query_nodes.size();
  stats_.pool_hits += pool_after.hits - pool_before.hits;
  stats_.pool_misses += pool_after.misses - pool_before.misses;

  if (obs::MetricsEnabled()) {
    static obs::Counter& requests =
        obs::MetricsRegistry::Global().GetCounter("infer.requests");
    static obs::Counter& nodes =
        obs::MetricsRegistry::Global().GetCounter("infer.nodes_served");
    static obs::Histogram& latency =
        obs::MetricsRegistry::Global().GetHistogram("infer.request_ms");
    requests.Increment();
    nodes.Increment(query_nodes.size());
    latency.Record(latency_ms);
  }
  return out;
}

Tensor InferenceSession::ServeAll() {
  std::vector<uint32_t> all(model_.data().num_nodes());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<uint32_t>(i);
  StatusOr<Tensor> result = ServeBatch(all);
  LASAGNE_CHECK_MSG(result.ok(), result.status().ToString());
  return std::move(result).value();
}

}  // namespace lasagne::infer
