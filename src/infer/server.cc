#include "infer/server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "autograd/ops.h"
#include "common/buffer_pool.h"
#include "common/check.h"
#include "common/fault_injection.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lasagne::infer {

namespace internal {

/// Completion slot shared between a ServeFuture and the worker (or
/// admission path) that resolves it. Resolved exactly once.
struct ServeFutureState {
  std::mutex mutex;
  std::condition_variable cv;
  bool ready = false;
  ServeResult result;
};

}  // namespace internal

namespace {

using Clock = std::chrono::steady_clock;

double MsBetween(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

void Resolve(const std::shared_ptr<internal::ServeFutureState>& state,
             ServeResult result) {
  {
    std::lock_guard<std::mutex> lock(state->mutex);
    LASAGNE_CHECK_MSG(!state->ready,
                      "serve request resolved twice: " << result.status.ToString());
    state->result = std::move(result);
    state->ready = true;
  }
  state->cv.notify_all();
}

void CountDeadlineMiss() {
  if (obs::MetricsEnabled()) {
    static obs::Counter& missed =
        obs::MetricsRegistry::Global().GetCounter("serve.deadline_missed");
    missed.Increment();
  }
}

}  // namespace

bool ServeFuture::ready() const {
  LASAGNE_CHECK_MSG(valid(), "ready() on an invalid ServeFuture");
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->ready;
}

const ServeResult& ServeFuture::Wait() const {
  LASAGNE_CHECK_MSG(valid(), "Wait() on an invalid ServeFuture");
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock, [&] { return state_->ready; });
  return state_->result;
}

bool ServeFuture::WaitFor(double timeout_ms) const {
  LASAGNE_CHECK_MSG(valid(), "WaitFor() on an invalid ServeFuture");
  std::unique_lock<std::mutex> lock(state_->mutex);
  return state_->cv.wait_for(lock,
                             std::chrono::duration<double, std::milli>(
                                 std::max(timeout_ms, 0.0)),
                             [&] { return state_->ready; });
}

InferenceServer::InferenceServer(ModelFactory factory, ServerOptions options)
    : options_(options),
      queue_(options.queue_capacity) {
  if (options_.num_workers == 0) options_.num_workers = 1;
  if (options_.max_batch_requests == 0) options_.max_batch_requests = 1;
  workers_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->model = factory(i);
    LASAGNE_CHECK_MSG(worker->model != nullptr,
                      "ModelFactory returned null for worker " << i);
    worker->rng = Rng(options_.seed + i);
    workers_.push_back(std::move(worker));
  }
  if (options_.autostart) Start();
}

InferenceServer::InferenceServer(const std::string& model_name,
                                 const Dataset& data,
                                 const ModelConfig& config,
                                 ServerOptions options)
    : InferenceServer(
          [&data, model_name, config](size_t) {
            return MakeModel(model_name, data, config);
          },
          options) {}

InferenceServer::~InferenceServer() { Shutdown(DrainMode::kDrain); }

void InferenceServer::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (started_) return;
  started_ = true;
  for (size_t i = 0; i < workers_.size(); ++i) {
    workers_[i]->thread =
        std::thread([this, i] { WorkerLoop(i); });
  }
}

void InferenceServer::Shutdown(DrainMode mode) {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    if (shutdown_) return;
    shutdown_ = true;
    if (mode == DrainMode::kCancelPending) {
      cancel_pending_.store(true, std::memory_order_relaxed);
    }
  }
  // No new admissions; queued items stay poppable so workers drain (or
  // cancel) the backlog deterministically before exiting.
  queue_.Close();
  Start();  // a never-started server still resolves its backlog
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  UpdateQueueDepthGauge();
}

double InferenceServer::RetryAfterHintMs() const {
  const double batch_ms =
      std::max(ewma_batch_ms_.load(std::memory_order_relaxed), 0.1);
  const double backlog_batches =
      static_cast<double>(queue_.size()) /
          static_cast<double>(options_.max_batch_requests) +
      1.0;
  return batch_ms * backlog_batches /
         static_cast<double>(workers_.size());
}

void InferenceServer::UpdateQueueDepthGauge() const {
  if (obs::MetricsEnabled()) {
    static obs::Gauge& depth =
        obs::MetricsRegistry::Global().GetGauge("serve.queue_depth");
    depth.Set(static_cast<double>(queue_.size()));
  }
}

ServeFuture InferenceServer::Submit(std::vector<uint32_t> query_nodes,
                                    RequestOptions request) {
  LASAGNE_TRACE_SCOPE("serve.enqueue");
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (obs::MetricsEnabled()) {
    static obs::Counter& submitted =
        obs::MetricsRegistry::Global().GetCounter("serve.submitted");
    submitted.Increment();
  }

  auto state = std::make_shared<internal::ServeFutureState>();
  ServeFuture future(state);

  // Validate at admission, on the producer thread: a worker never sees
  // a malformed request, so a coalesced batch can't be poisoned by one.
  const size_t num_nodes = workers_.front()->model->data().num_nodes();
  Status invalid;
  if (query_nodes.empty()) {
    invalid = InvalidArgumentError("empty query batch");
  } else {
    for (uint32_t id : query_nodes) {
      if (id >= num_nodes) {
        invalid = InvalidArgumentError(
            "query node " + std::to_string(id) + " out of range [0, " +
            std::to_string(num_nodes) + ")");
        break;
      }
    }
  }
  if (!invalid.ok()) {
    rejected_invalid_.fetch_add(1, std::memory_order_relaxed);
    ServeResult result;
    result.status = invalid;
    Resolve(state, std::move(result));
    return future;
  }

  Request req;
  req.state = state;
  req.nodes = std::move(query_nodes);
  req.submit_time = Clock::now();
  const double deadline_ms = request.deadline_ms > 0.0
                                 ? request.deadline_ms
                                 : options_.default_deadline_ms;
  if (deadline_ms > 0.0) {
    req.has_deadline = true;
    req.deadline =
        req.submit_time +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double, std::milli>(deadline_ms));
  } else {
    req.deadline = Clock::time_point::max();
  }

  switch (queue_.TryPush(std::move(req))) {
    case BoundedMpmcQueue<Request>::PushResult::kOk: {
      accepted_.fetch_add(1, std::memory_order_relaxed);
      UpdateQueueDepthGauge();
      return future;
    }
    case BoundedMpmcQueue<Request>::PushResult::kFull: {
      rejected_queue_full_.fetch_add(1, std::memory_order_relaxed);
      if (obs::MetricsEnabled()) {
        static obs::Counter& rejected =
            obs::MetricsRegistry::Global().GetCounter("serve.rejected");
        rejected.Increment();
      }
      ServeResult result;
      result.retry_after_ms = RetryAfterHintMs();
      result.status = ResourceExhaustedError(
          "serving queue full (" + std::to_string(queue_.capacity()) +
          " requests); retry after ~" +
          std::to_string(result.retry_after_ms) + " ms");
      Resolve(state, std::move(result));
      return future;
    }
    case BoundedMpmcQueue<Request>::PushResult::kClosed:
    default: {
      rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
      if (obs::MetricsEnabled()) {
        static obs::Counter& rejected =
            obs::MetricsRegistry::Global().GetCounter("serve.rejected");
        rejected.Increment();
      }
      ServeResult result;
      result.status = UnavailableError("server is shutting down");
      Resolve(state, std::move(result));
      return future;
    }
  }
}

void InferenceServer::WorkerLoop(size_t worker_index) {
  // Worker-level concurrency only: each forward runs its inner kernels
  // inline and serial (same contract as concurrent experiment trials),
  // so N workers scale across cores without fighting over the shared
  // pool, and per-worker arithmetic is bitwise-identical to a
  // single-threaded run.
  ParallelRegionGuard guard;
  Request first;
  while (queue_.Pop(&first) == BoundedMpmcQueue<Request>::PopResult::kItem) {
    UpdateQueueDepthGauge();
    LASAGNE_TRACE_SCOPE("serve.dequeue");
    std::vector<Request> group;
    group.push_back(std::move(first));
    // Cross-request batching: sweep the backlog, then keep the window
    // open for late arrivals. Skipped when cancelling — each request
    // should resolve individually, promptly.
    if (options_.max_batch_requests > 1 &&
        !cancel_pending_.load(std::memory_order_relaxed)) {
      Request extra;
      while (group.size() < options_.max_batch_requests &&
             queue_.TryPop(&extra)) {
        group.push_back(std::move(extra));
      }
      if (options_.batch_window_ms > 0.0) {
        const auto window_end =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(
                                   options_.batch_window_ms));
        while (group.size() < options_.max_batch_requests) {
          const auto remaining = window_end - Clock::now();
          if (remaining <= Clock::duration::zero()) break;
          const auto pop = queue_.PopFor(
              &extra,
              std::chrono::duration_cast<std::chrono::nanoseconds>(remaining));
          if (pop != BoundedMpmcQueue<Request>::PopResult::kItem) break;
          group.push_back(std::move(extra));
        }
      }
      UpdateQueueDepthGauge();
    }
    ServeBatchOnWorker(worker_index, group);
  }
}

void InferenceServer::ServeBatchOnWorker(size_t worker_index,
                                         std::vector<Request>& group) {
  Worker& w = *workers_[worker_index];
  const auto dequeue_time = Clock::now();

  // Triage: resolve cancelled / already-expired requests without a
  // forward pass; only live ones ride the batch.
  std::vector<Request> live;
  live.reserve(group.size());
  uint64_t cancelled_count = 0;
  uint64_t expired_count = 0;
  double triaged_queue_ms = 0.0;
  const bool cancel = cancel_pending_.load(std::memory_order_relaxed);
  for (Request& req : group) {
    const double queue_ms = MsBetween(req.submit_time, dequeue_time);
    triaged_queue_ms += queue_ms;
    if (cancel) {
      ServeResult result;
      result.status =
          CancelledError("request cancelled by shutdown before serving");
      result.queue_ms = queue_ms;
      result.total_ms = queue_ms;
      Resolve(req.state, std::move(result));
      ++cancelled_count;
      continue;
    }
    if (req.has_deadline && dequeue_time > req.deadline) {
      ServeResult result;
      result.status = DeadlineExceededError(
          "deadline expired after " + std::to_string(queue_ms) +
          " ms in queue; request rejected before the forward pass");
      result.queue_ms = queue_ms;
      result.total_ms = queue_ms;
      Resolve(req.state, std::move(result));
      ++expired_count;
      CountDeadlineMiss();
      continue;
    }
    live.push_back(std::move(req));
  }

  // Injected serving faults (docs/SERVING.md): a stall delays this
  // batch only — the queue stays open and sibling workers keep
  // serving; a failure poisons worker `worker_index`, which must still
  // resolve every affected request with a terminal error.
  if (!live.empty()) {
    double stall_ms = 0.0;
    if (FaultInjector::Global().ConsumeServeStall(&stall_ms)) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(stall_ms));
    }
  }
  const bool injected_failure =
      !live.empty() && FaultInjector::Global().ConsumeServeFailure(
                           static_cast<int>(worker_index));

  Tensor gathered;
  double compute_ms = 0.0;
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
  if (!live.empty() && !injected_failure) {
    LASAGNE_TRACE_SCOPE("serve.batch");
    // This worker's own pool traffic only: the kernels run inline on
    // this thread (ParallelRegionGuard), so thread-local deltas see
    // every allocation of this batch and nothing from sibling workers.
    // Sharding keeps these semantics: each worker's magazine is part of
    // its thread-local state, so warm batches hit the magazine without
    // taking the depot mutex, and the delta below still counts exactly
    // this batch (ThreadStats are monotonic across ResetStats — see
    // buffer_pool.h).
    const BufferPool::ThreadStats pool_before = BufferPool::GetThreadStats();
    const auto compute_start = Clock::now();
    std::vector<size_t> rows;
    size_t total_nodes = 0;
    for (const Request& req : live) total_nodes += req.nodes.size();
    rows.reserve(total_nodes);
    for (const Request& req : live) {
      for (uint32_t id : req.nodes) rows.push_back(id);
    }
    nn::ForwardContext ctx{/*training=*/false, &w.rng};
    Tensor logits = w.model->Predict(ctx);
    gathered = logits.GatherRows(rows);
    if (options_.softmax_outputs) gathered = ag::SoftmaxRows(gathered);
    compute_ms = MsBetween(compute_start, Clock::now());
    const BufferPool::ThreadStats pool_after = BufferPool::GetThreadStats();
    pool_hits = pool_after.hits - pool_before.hits;
    pool_misses = pool_after.misses - pool_before.misses;
    const double prev = ewma_batch_ms_.load(std::memory_order_relaxed);
    ewma_batch_ms_.store(0.8 * prev + 0.2 * compute_ms,
                         std::memory_order_relaxed);
  }
  const auto done = Clock::now();

  // Stats + resolution under the worker's own lock: shared-nothing
  // across workers, consistent for Snapshot. The sleep and the forward
  // pass above run outside it.
  std::lock_guard<std::mutex> lock(w.mutex);
  w.cancelled += cancelled_count;
  w.expired_at_dequeue += expired_count;
  w.total_queue_ms += triaged_queue_ms;
  if (live.empty()) return;

  if (injected_failure) {
    for (Request& req : live) {
      ServeResult result;
      result.status = InternalError(
          "injected failure on worker " + std::to_string(worker_index));
      result.worker = static_cast<int>(worker_index);
      result.queue_ms = MsBetween(req.submit_time, dequeue_time);
      result.total_ms = MsBetween(req.submit_time, done);
      Resolve(req.state, std::move(result));
      ++w.failed;
    }
    return;
  }

  ++w.batches;
  w.coalesced_requests += live.size();
  w.serve.pool_hits += pool_hits;
  w.serve.pool_misses += pool_misses;

  size_t row_offset = 0;
  for (Request& req : live) {
    std::vector<size_t> indices(req.nodes.size());
    for (size_t i = 0; i < indices.size(); ++i) indices[i] = row_offset + i;
    row_offset += req.nodes.size();

    ServeResult result;
    result.logits = gathered.GatherRows(indices);
    result.has_logits = true;
    result.worker = static_cast<int>(worker_index);
    result.batch_requests = live.size();
    result.queue_ms = MsBetween(req.submit_time, dequeue_time);
    result.compute_ms = compute_ms;
    result.total_ms = MsBetween(req.submit_time, done);

    const bool late = req.has_deadline && done > req.deadline;
    if (late) {
      result.status = DeadlineExceededError(
          "served " +
          std::to_string(MsBetween(req.deadline, done)) +
          " ms past the deadline (late response delivered, flagged)");
      ++w.late_at_completion;
      CountDeadlineMiss();
    } else {
      ++w.served_ok;
    }
    w.serve.RecordLatencyAt(
        result.total_ms,
        std::chrono::duration<double, std::milli>(done.time_since_epoch())
            .count());
    w.serve.nodes_served += req.nodes.size();

    if (obs::MetricsEnabled()) {
      static obs::Counter& served =
          obs::MetricsRegistry::Global().GetCounter("serve.requests");
      static obs::Histogram& request_ms =
          obs::MetricsRegistry::Global().GetHistogram("serve.request_ms");
      static obs::Histogram& queue_ms =
          obs::MetricsRegistry::Global().GetHistogram("serve.queue_ms");
      served.Increment();
      request_ms.Record(result.total_ms);
      queue_ms.Record(result.queue_ms);
    }
    Resolve(req.state, std::move(result));
  }
  if (obs::MetricsEnabled()) {
    static obs::Counter& batches =
        obs::MetricsRegistry::Global().GetCounter("serve.batches");
    batches.Increment();
  }
}

ServerStats InferenceServer::Snapshot() const {
  ServerStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.rejected_queue_full =
      rejected_queue_full_.load(std::memory_order_relaxed);
  stats.rejected_shutdown =
      rejected_shutdown_.load(std::memory_order_relaxed);
  stats.rejected_invalid = rejected_invalid_.load(std::memory_order_relaxed);
  for (const auto& worker : workers_) {
    std::lock_guard<std::mutex> lock(worker->mutex);
    stats.served_ok += worker->served_ok;
    stats.expired_at_dequeue += worker->expired_at_dequeue;
    stats.late_at_completion += worker->late_at_completion;
    stats.cancelled += worker->cancelled;
    stats.failed += worker->failed;
    stats.batches += worker->batches;
    stats.coalesced_requests += worker->coalesced_requests;
    stats.total_queue_ms += worker->total_queue_ms;
    stats.serve.Merge(worker->serve);
  }
  return stats;
}

}  // namespace lasagne::infer
