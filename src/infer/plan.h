#ifndef LASAGNE_INFER_PLAN_H_
#define LASAGNE_INFER_PLAN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "autograd/forward_trace.h"
#include "common/buffer_pool.h"
#include "common/status.h"
#include "tensor/tensor.h"

namespace lasagne {
class Model;
}

namespace lasagne::infer {

/// Compile-time summary of an ExecutionPlan, for logs and tests.
struct PlanInfo {
  size_t steps = 0;    // interpreted ops per Run()
  size_t slots = 0;    // value slots (leaves + intermediates)
  size_t leaves = 0;   // parameter/constant inputs bound by reference
  uint64_t workspace_bytes = 0;  // pre-reserved slab size
  size_t traced_ops = 0;      // ops captured by the forward trace
  size_t fused_steps = 0;     // steps executing >= 2 traced ops
  size_t ops_fused_away = 0;  // traced_ops - steps
};

/// Per-step-name census of a compiled plan. Fused steps appear under
/// their combined name ("SpMM+Relu", "MatMul+Bias+Relu", ...), so tests
/// and benches can pin exactly which chains fused.
struct PlanOpSummary {
  size_t traced_ops = 0;
  size_t steps = 0;
  size_t fused_steps = 0;
  size_t ops_fused_away = 0;
  /// step name -> occurrence count, sorted by name.
  std::vector<std::pair<std::string, size_t>> op_counts;

  /// Occurrences of one step name (0 when absent).
  size_t Count(const std::string& op_name) const;
  /// e.g. "7 steps / 9 traced ops (2 fused): MatMul x4, SpMM+Relu x1, ..."
  std::string ToString() const;
};

/// Static execution plan for one (model, graph) pair.
///
/// `Compile` traces the model's evaluation-mode forward once
/// (ag::ForwardTrace under ag::NoGradGuard) into a flat, execution-
/// ordered op list, then runs ahead-of-time buffer lifetime analysis:
/// each intermediate's live range is [producing step, last consuming
/// step], dead slots are dropped at their release point, and a sizing
/// run records the per-bucket high-water working set into a
/// BufferPool::Workspace that is then finalized into a single
/// pre-reserved slab. `Run` replays the op list through that slab —
/// no autograd nodes, no Forward re-walk, and zero global BufferPool
/// traffic on the steady-state hot path (the `tensor.alloc.pool_*`
/// counters stay flat).
///
/// Before lowering, a peephole fusion pass rewrites single-consumer op
/// chains (SpMM→activation, MatMul→bias[→activation], and the GAT
/// edge-score / edge-softmax chains) into single steps backed by fused
/// kernels (src/tensor/kernels.h) whose epilogues are elementwise, so
/// fused steps stay bitwise-identical to the op pair they replace.
/// Fused-away intermediates never get slots: they are invisible to the
/// lifetime analysis and the workspace sizing run. `OpSummary()`
/// reports what actually fused; `Compile(model, /*fuse_ops=*/false)`
/// disables the pass (see docs/INFERENCE.md).
///
/// Replay closures rerun exactly the eager arithmetic, so plan logits
/// are bitwise identical to `Forward(ctx)->value()`; Compile verifies
/// this against the traced forward's own output and refuses to return
/// a plan that disagrees. Leaf inputs (parameters, cached feature
/// constants) are bound by reference to the model's nodes, so in-place
/// parameter updates (optimizer steps, checkpoint restores) flow into
/// subsequent runs without recompiling. Recompile (via
/// Model::InvalidateExecutionPlan) when the *structure* changes.
///
/// Not thread-safe: one plan serves one thread (the server gives each
/// worker its own model and therefore its own plan, preserving the
/// per-worker determinism contract in docs/THREADING.md).
class ExecutionPlan {
 public:
  /// Traces `model`'s eval forward and compiles it. Fails with
  /// FAILED_PRECONDITION when the forward executes an op with no
  /// replay closure (training-only or uninstrumented ops) and
  /// INTERNAL when the compiled plan fails its bitwise self-check;
  /// callers fall back to the eager forward on any error.
  static StatusOr<std::unique_ptr<ExecutionPlan>> Compile(
      Model& model, bool fuse_ops = true);

  /// Executes the plan and returns the logits. The reference stays
  /// valid (and its contents stable) until the next Run.
  const Tensor& Run();

  PlanInfo info() const;

  /// Census of the compiled steps by name, with fusion totals.
  PlanOpSummary OpSummary() const;

  /// Acquires the finalized workspace could not serve (0 in steady
  /// state; nonzero means the recorded working set was exceeded and
  /// the global pool absorbed the difference).
  uint64_t overflow_acquires() const {
    return workspace_.overflow_acquires();
  }

  ExecutionPlan(const ExecutionPlan&) = delete;
  ExecutionPlan& operator=(const ExecutionPlan&) = delete;

 private:
  ExecutionPlan() = default;

  struct Step {
    ag::TraceFn replay;
    std::vector<const Tensor*> input_ptrs;  // pre-bound slot addresses
    uint32_t output_slot = 0;
    std::vector<uint32_t> release_after;  // slots dead after this step
    std::string op_name;
    uint32_t fused_ops = 1;  // traced ops this step executes
  };

  /// One interpreter pass: execute every step, drop dead slots at
  /// their release points, copy the root into `output_`.
  void ExecuteSteps();

  std::vector<Step> steps_;
  /// Keeps leaf nodes (params, constants) alive; slot pointers for
  /// leaf slots alias their value() tensors.
  std::vector<ag::Variable> leaves_;
  /// Storage for intermediate slots (leaf slots stay empty). Sized at
  /// compile time and never resized, so element addresses are stable.
  std::vector<Tensor> slot_values_;
  /// Per-slot value address: &leaf->value() or &slot_values_[slot].
  std::vector<const Tensor*> slot_ptr_;
  uint32_t root_slot_ = 0;
  bool root_is_leaf_ = false;
  /// Trace length before fusion (>= steps_.size()).
  size_t traced_ops_ = 0;
  /// Persistent, global-pool-backed output the root is copied into
  /// (plan intermediates never escape the workspace scope).
  Tensor output_;
  BufferPool::Workspace workspace_;
};

}  // namespace lasagne::infer

#endif  // LASAGNE_INFER_PLAN_H_
