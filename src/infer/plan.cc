#include "infer/plan.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "autograd/edge_ops.h"
#include "autograd/inference.h"
#include "common/check.h"
#include "common/parallel_config.h"
#include "common/thread_pool.h"
#include "models/model.h"
#include "nn/layers.h"
#include "sparse/csr_matrix.h"
#include "tensor/kernels.h"
#include "tensor/rng.h"

namespace lasagne::infer {

namespace {

using ag::TraceOpKind;

/// Activation epilogue a fused step carries (kNone = plain bias).
enum class FusedAct { kNone, kRelu, kLeakyRelu };

/// One execution-plan op after fusion: a TraceRecord whose replay may
/// cover several traced ops.
struct PlanOp {
  ag::Variable output;
  std::vector<ag::Variable> inputs;
  ag::TraceFn replay;
  std::string op_name;
  uint32_t fused_ops = 1;
};

/// inputs = {x, w, bias}: out = act(x @ w + bias). Reproduces
/// Tensor::MatMul's orchestration (packed panel, RowGrain partition);
/// the fused kernels keep GemmRowsNN's ascending-k accumulation and
/// apply bias/activation as elementwise row epilogues, so the result
/// is bitwise the MatMul→AddRowVector[→act] chain.
ag::TraceFn MakeGemmBiasReplay(FusedAct act, float alpha) {
  return [act, alpha](const std::vector<const Tensor*>& in) {
    const Tensor& x = *in[0];
    const Tensor& w = *in[1];
    const float* bias = in[2]->data();
    const size_t k_dim = x.cols();
    const size_t n_dim = w.cols();
    Tensor out = Tensor::Uninitialized(x.rows(), n_dim);
    internal::PoolBuffer packed(kernels::PackedBSize(k_dim, n_dim));
    if (packed.data() != nullptr) {
      kernels::PackB(w.data(), k_dim, n_dim, packed.data());
    }
    ParallelFor(0, x.rows(), RowGrain(k_dim * n_dim),
                [&](size_t row_begin, size_t row_end) {
                  switch (act) {
                    case FusedAct::kNone:
                      kernels::GemmRowsNNBias(x.data(), k_dim, n_dim, w.data(),
                                              packed.data(), bias, out.data(),
                                              row_begin, row_end);
                      break;
                    case FusedAct::kRelu:
                      kernels::GemmRowsNNBiasRelu(x.data(), k_dim, n_dim,
                                                  w.data(), packed.data(),
                                                  bias, out.data(), row_begin,
                                                  row_end);
                      break;
                    case FusedAct::kLeakyRelu:
                      kernels::GemmRowsNNBiasLeakyRelu(
                          x.data(), k_dim, n_dim, w.data(), packed.data(),
                          bias, alpha, out.data(), row_begin, row_end);
                      break;
                  }
                });
    return out;
  };
}

/// inputs = {x}: out = act(matrix @ x). Same row partition as
/// CsrMatrix::Multiply; activation applied to the hot row block.
ag::TraceFn MakeSpmmActReplay(std::shared_ptr<const CsrMatrix> matrix,
                              FusedAct act, float alpha) {
  return [matrix, act, alpha](const std::vector<const Tensor*>& in) {
    const Tensor& x = *in[0];
    const size_t d = x.cols();
    const size_t rows = matrix->rows();
    Tensor out = Tensor::Uninitialized(rows, d);
    const size_t work_per_row =
        (matrix->nnz() / std::max<size_t>(rows, 1) + 1) *
        std::max<size_t>(d, 1);
    const size_t grain = std::max<size_t>(1, kGrain / work_per_row);
    ParallelFor(0, rows, grain, [&](size_t row_begin, size_t row_end) {
      if (act == FusedAct::kRelu) {
        kernels::SpmmRowsRelu(matrix->row_ptr().data(),
                              matrix->col_idx().data(),
                              matrix->values().data(), x.data(), d, out.data(),
                              row_begin, row_end);
      } else {
        kernels::SpmmRowsLeakyRelu(matrix->row_ptr().data(),
                                   matrix->col_idx().data(),
                                   matrix->values().data(), x.data(), d, alpha,
                                   out.data(), row_begin, row_end);
      }
    });
    return out;
  };
}

/// inputs = {a, b}: out = max(a + b, 0). Same flat kGrain partition as
/// Tensor::operator+; the ReLU is folded into the add pass, so the sum
/// tensor is never materialized. Elementwise, so bitwise-identical to
/// the unfused pair at any thread count.
ag::TraceFn MakeAddReluReplay() {
  return [](const std::vector<const Tensor*>& in) {
    const Tensor& a = *in[0];
    const Tensor& b = *in[1];
    Tensor out = Tensor::Uninitialized(a.rows(), a.cols());
    ParallelFor(0, out.size(), kGrain, [&](size_t begin, size_t end) {
      kernels::EwAddRelu(a.data() + begin, b.data() + begin,
                         out.data() + begin, end - begin);
    });
    return out;
  };
}

/// inputs = {dst_scores, src_scores, features}: the whole attention
/// chain — score gather → optional bias → LeakyReLU → masked softmax →
/// weighted aggregation — as ONE row-partitioned sweep through
/// kernels::EdgeAttentionForward. None of the (E x 1) intermediates
/// materialize (per-edge weights live in one pooled E-float scratch
/// drawn from the plan workspace), the aggregation is register-blocked
/// like SpmmRows, and every stage keeps the eager float sequence, so
/// the step is bitwise the 4/5-op chain at any thread count.
ag::TraceFn MakeEdgeAttentionReplay(
    std::shared_ptr<const ag::EdgeStructure> edges, float slope,
    std::shared_ptr<const std::vector<float>> edge_bias) {
  return [edges, slope, edge_bias](const std::vector<const Tensor*>& in) {
    const Tensor& dst = *in[0];
    const Tensor& src = *in[1];
    const Tensor& feats = *in[2];
    const size_t d = feats.cols();
    Tensor out = Tensor::Uninitialized(edges->num_nodes, d);
    internal::PoolBuffer probs(edges->num_edges());
    const size_t work_per_row =
        (edges->num_edges() / std::max<size_t>(edges->num_nodes, 1) + 1) *
        std::max<size_t>(d, 1);
    const size_t grain = std::max<size_t>(1, kGrain / work_per_row);
    ParallelFor(0, edges->num_nodes, grain,
                [&](size_t row_begin, size_t row_end) {
                  kernels::EdgeAttentionForward(
                      edges->row_ptr.data(), edges->src.data(), dst.data(),
                      src.data(),
                      edge_bias != nullptr ? edge_bias->data() : nullptr,
                      slope, feats.data(), d, probs.data(), out.data(),
                      row_begin, row_end);
                });
    return out;
  };
}

/// inputs = {dst_scores, src_scores}: per-edge score with the leaky
/// epilogue inlined — skips materializing the (E x 1) raw-score tensor.
/// `d + s` and the slope test are the exact eager float ops.
ag::TraceFn MakeGatherLeakyReluReplay(
    std::shared_ptr<const ag::EdgeStructure> edges, float alpha) {
  return [edges, alpha](const std::vector<const Tensor*>& in) {
    Tensor y(edges->num_edges(), 1);
    for (size_t i = 0; i < edges->num_nodes; ++i) {
      const float d = (*in[0])(i, 0);
      for (size_t k = edges->row_ptr[i]; k < edges->row_ptr[i + 1]; ++k) {
        const float t = d + (*in[1])(edges->src[k], 0);
        y(k, 0) = t >= 0.0f ? t : alpha * t;
      }
    }
    return y;
  };
}

/// inputs = {edge_scores, features}: per-destination softmax feeding
/// the weighted aggregation directly — the (E x 1) attention tensor
/// never materializes; per-edge probabilities live in a max-fan-in
/// scratch sized at compile time. Each step reproduces the eager
/// arithmetic float-for-float: exp into float, double total in
/// ascending k, one rounded multiply by 1/total, then the ascending-k
/// accumulate of EdgeWeightedAggregate.
ag::TraceFn MakeEdgeSoftmaxAggregateReplay(
    std::shared_ptr<const ag::EdgeStructure> edges) {
  size_t max_fan_in = 0;
  for (size_t i = 0; i < edges->num_nodes; ++i) {
    max_fan_in =
        std::max(max_fan_in, edges->row_ptr[i + 1] - edges->row_ptr[i]);
  }
  // Plans are single-threaded (one plan per worker), so one scratch
  // per closure is race-free.
  auto scratch = std::make_shared<std::vector<float>>(max_fan_in);
  return [edges, scratch](const std::vector<const Tensor*>& in) {
    const Tensor& scores = *in[0];
    const Tensor& feats = *in[1];
    const size_t d = feats.cols();
    Tensor y(edges->num_nodes, d);
    std::vector<float>& probs = *scratch;
    for (size_t i = 0; i < edges->num_nodes; ++i) {
      const size_t begin = edges->row_ptr[i];
      const size_t end = edges->row_ptr[i + 1];
      if (begin == end) continue;
      float max_v = scores(begin, 0);
      for (size_t k = begin + 1; k < end; ++k) {
        max_v = std::max(max_v, scores(k, 0));
      }
      double total = 0.0;
      for (size_t k = begin; k < end; ++k) {
        probs[k - begin] = std::exp(scores(k, 0) - max_v);
        total += probs[k - begin];
      }
      const float inv = static_cast<float>(1.0 / total);
      float* out_row = y.RowPtr(i);
      for (size_t k = begin; k < end; ++k) {
        const float w = probs[k - begin] * inv;
        const float* f_row = feats.RowPtr(edges->src[k]);
        for (size_t j = 0; j < d; ++j) out_row[j] += w * f_row[j];
      }
    }
    return y;
  };
}

/// Peephole fusion over the execution-ordered trace. A chain fuses
/// only when every intermediate (a) has exactly one consumer in the
/// whole trace, (b) is consumed as that op's first input (the position
/// every rule expects), and (c) is not the plan root (externally
/// visible). Everything else passes through unchanged — in particular
/// any op the trace marked kOpaque breaks a chain, so fusion never
/// reaches across an op it cannot prove.
std::vector<PlanOp> FuseTraceRecords(std::vector<ag::TraceRecord> records,
                                     const ag::Node* root) {
  std::unordered_map<const ag::Node*, size_t> uses;
  for (const ag::TraceRecord& rec : records) {
    for (const ag::Variable& input : rec.inputs) ++uses[input.get()];
  }
  auto link_ok = [&uses, root](const ag::TraceRecord& producer,
                               const ag::TraceRecord& consumer) {
    return !consumer.inputs.empty() &&
           consumer.inputs[0].get() == producer.output.get() &&
           uses[producer.output.get()] == 1 && producer.output.get() != root;
  };
  auto is_activation = [](const ag::TraceRecord& rec) {
    return rec.meta.kind == TraceOpKind::kRelu ||
           rec.meta.kind == TraceOpKind::kLeakyRelu;
  };
  auto act_of = [](const ag::TraceRecord& rec) {
    return rec.meta.kind == TraceOpKind::kRelu ? FusedAct::kRelu
                                               : FusedAct::kLeakyRelu;
  };

  std::vector<PlanOp> ops;
  ops.reserve(records.size());
  size_t i = 0;
  while (i < records.size()) {
    ag::TraceRecord& rec = records[i];
    ag::TraceRecord* next = i + 1 < records.size() ? &records[i + 1] : nullptr;
    ag::TraceRecord* third =
        i + 2 < records.size() ? &records[i + 2] : nullptr;

    // MatMul→AddRowVector[→activation]: linear layer with bias.
    if (rec.meta.kind == TraceOpKind::kMatMul && next != nullptr &&
        next->meta.kind == TraceOpKind::kAddRowVector && link_ok(rec, *next)) {
      const bool with_act =
          third != nullptr && is_activation(*third) && link_ok(*next, *third);
      const size_t chain_len = with_act ? 3 : 2;
      PlanOp op;
      op.inputs = {rec.inputs[0], rec.inputs[1], next->inputs[1]};
      op.fused_ops = static_cast<uint32_t>(chain_len);
      if (with_act) {
        const FusedAct act = act_of(*third);
        op.output = third->output;
        op.replay = MakeGemmBiasReplay(act, third->meta.alpha);
        op.op_name = act == FusedAct::kRelu ? "MatMul+Bias+Relu"
                                            : "MatMul+Bias+LeakyRelu";
      } else {
        op.output = next->output;
        op.replay = MakeGemmBiasReplay(FusedAct::kNone, 0.0f);
        op.op_name = "MatMul+Bias";
      }
      ops.push_back(std::move(op));
      i += chain_len;
      continue;
    }

    // SpMM→activation: graph aggregation into its nonlinearity.
    if (rec.meta.kind == TraceOpKind::kSpMM &&
        rec.meta.spmm_matrix != nullptr && next != nullptr &&
        is_activation(*next) && link_ok(rec, *next)) {
      const FusedAct act = act_of(*next);
      PlanOp op;
      op.output = next->output;
      op.inputs = {rec.inputs[0]};
      op.replay = MakeSpmmActReplay(rec.meta.spmm_matrix, act,
                                    next->meta.alpha);
      op.op_name =
          act == FusedAct::kRelu ? "SpMM+Relu" : "SpMM+LeakyRelu";
      op.fused_ops = 2;
      ops.push_back(std::move(op));
      i += 2;
      continue;
    }

    // Add→Relu: residual / two-branch combine into its nonlinearity
    // (GraphSAGE's self+neighbor merge, ResGCN skip connections).
    if (rec.meta.kind == TraceOpKind::kAdd && next != nullptr &&
        next->meta.kind == TraceOpKind::kRelu && link_ok(rec, *next)) {
      PlanOp op;
      op.output = next->output;
      op.inputs = {rec.inputs[0], rec.inputs[1]};
      op.replay = MakeAddReluReplay();
      op.op_name = "Add+Relu";
      op.fused_ops = 2;
      ops.push_back(std::move(op));
      i += 2;
      continue;
    }

    // GatherEdgeScores→[AddEdgeBias→]LeakyRelu→EdgeSoftmax→
    // EdgeWeightedAggregate: the whole attention chain of one GAT/ADSF
    // head super-fuses into a single kernels::EdgeAttentionForward
    // step. Tried before the pairwise edge rules below, which remain
    // only as fallbacks for partial chains (the two-step form is
    // slower than both this and the raw ops — see BENCH_inference.json
    // history).
    if (rec.meta.kind == TraceOpKind::kGatherEdgeScores &&
        rec.meta.edges != nullptr) {
      size_t j = i + 1;
      std::shared_ptr<const std::vector<float>> edge_bias;
      const ag::TraceRecord* prev = &rec;
      if (j < records.size() &&
          records[j].meta.kind == TraceOpKind::kAddEdgeBias &&
          records[j].meta.edge_bias != nullptr && link_ok(*prev, records[j])) {
        edge_bias = records[j].meta.edge_bias;
        prev = &records[j];
        ++j;
      }
      if (j + 2 < records.size() &&
          records[j].meta.kind == TraceOpKind::kLeakyRelu &&
          link_ok(*prev, records[j]) &&
          records[j + 1].meta.kind == TraceOpKind::kEdgeSoftmax &&
          records[j + 1].meta.edges.get() == rec.meta.edges.get() &&
          link_ok(records[j], records[j + 1]) &&
          records[j + 2].meta.kind == TraceOpKind::kEdgeWeightedAggregate &&
          records[j + 2].meta.edges.get() == rec.meta.edges.get() &&
          link_ok(records[j + 1], records[j + 2])) {
        ag::TraceRecord& aggregate = records[j + 2];
        PlanOp op;
        op.output = aggregate.output;
        op.inputs = {rec.inputs[0], rec.inputs[1], aggregate.inputs[1]};
        op.replay = MakeEdgeAttentionReplay(rec.meta.edges,
                                            records[j].meta.alpha, edge_bias);
        op.op_name = "EdgeAttention";
        op.fused_ops = static_cast<uint32_t>(j + 3 - i);
        ops.push_back(std::move(op));
        i = j + 3;
        continue;
      }
    }

    // GatherEdgeScores→LeakyRelu: GAT raw attention scores.
    if (rec.meta.kind == TraceOpKind::kGatherEdgeScores &&
        rec.meta.edges != nullptr && next != nullptr &&
        next->meta.kind == TraceOpKind::kLeakyRelu && link_ok(rec, *next)) {
      PlanOp op;
      op.output = next->output;
      op.inputs = {rec.inputs[0], rec.inputs[1]};
      op.replay = MakeGatherLeakyReluReplay(rec.meta.edges, next->meta.alpha);
      op.op_name = "GatherEdgeScores+LeakyRelu";
      op.fused_ops = 2;
      ops.push_back(std::move(op));
      i += 2;
      continue;
    }

    // EdgeSoftmax→EdgeWeightedAggregate: attention normalization into
    // the aggregation (the intermediate is the E x 1 alpha tensor).
    if (rec.meta.kind == TraceOpKind::kEdgeSoftmax &&
        rec.meta.edges != nullptr && next != nullptr &&
        next->meta.kind == TraceOpKind::kEdgeWeightedAggregate &&
        link_ok(rec, *next)) {
      PlanOp op;
      op.output = next->output;
      op.inputs = {rec.inputs[0], next->inputs[1]};
      op.replay = MakeEdgeSoftmaxAggregateReplay(rec.meta.edges);
      op.op_name = "EdgeSoftmax+Aggregate";
      op.fused_ops = 2;
      ops.push_back(std::move(op));
      i += 2;
      continue;
    }

    PlanOp op;
    op.output = rec.output;
    op.inputs = std::move(rec.inputs);
    op.replay = std::move(rec.replay);
    op.op_name = rec.op_name;
    ops.push_back(std::move(op));
    ++i;
  }
  return ops;
}

}  // namespace

StatusOr<std::unique_ptr<ExecutionPlan>> ExecutionPlan::Compile(
    Model& model, bool fuse_ops) {
  auto plan = std::unique_ptr<ExecutionPlan>(new ExecutionPlan());

  // Phase 1: trace one evaluation-mode forward. The trace owns every
  // node it saw (records retain the Variables), so node addresses stay
  // unique for the lifetime of this function.
  ag::Variable root;
  std::vector<ag::TraceRecord> records;
  {
    ag::NoGradGuard guard;
    ag::ForwardTrace trace;
    Rng rng(1);
    nn::ForwardContext ctx;
    ctx.training = false;
    ctx.rng = &rng;
    root = model.Forward(ctx);
    LASAGNE_CHECK(root != nullptr);
    if (!trace.complete()) {
      return FailedPreconditionError(
          "model '" + model.name() + "' is not plan-compilable: op '" +
          trace.first_untraced_op() + "' has no replay closure (" +
          std::to_string(trace.untraced_ops()) + " untraced op(s))");
    }
    records = trace.TakeRecords();
  }
  plan->traced_ops_ = records.size();

  // Phase 1b: peephole fusion. Rewrites single-consumer chains into
  // fused-kernel ops BEFORE slot assignment, so fused-away
  // intermediates never get a slot — they are invisible to the
  // lifetime analysis and never enter the workspace sizing run.
  std::vector<PlanOp> fused_ops =
      fuse_ops ? FuseTraceRecords(std::move(records), root.get())
               : [&records] {
                   std::vector<PlanOp> passthrough;
                   passthrough.reserve(records.size());
                   for (ag::TraceRecord& rec : records) {
                     PlanOp op;
                     op.output = rec.output;
                     op.inputs = std::move(rec.inputs);
                     op.replay = std::move(rec.replay);
                     op.op_name = rec.op_name;
                     passthrough.push_back(std::move(op));
                   }
                   return passthrough;
                 }();

  // Phase 2: slot assignment. Ops are execution-ordered, so any input
  // not produced by an earlier op must be a leaf (a parameter or a
  // cached constant node owned by the model). Leaves get the
  // contiguous slot range [0, num_leaves) — they can appear anywhere
  // in the op stream (a deep model discovers the layer-2 weight after
  // the layer-1 output), so discovery needs its own pass before slots
  // are numbered.
  std::unordered_set<const ag::Node*> known;
  for (const PlanOp& op : fused_ops) {
    for (const ag::Variable& input : op.inputs) {
      if (known.insert(input.get()).second) plan->leaves_.push_back(input);
    }
    // An output node address can't collide with a leaf or an earlier
    // output: the ops retain every Variable, so addresses are not
    // reused while the trace is alive.
    if (!known.insert(op.output.get()).second) {
      return InternalError("trace produced the same node twice: " +
                           op.op_name);
    }
  }
  std::unordered_map<const ag::Node*, uint32_t> slot_of;
  slot_of.reserve(known.size());
  for (size_t i = 0; i < plan->leaves_.size(); ++i) {
    slot_of.emplace(plan->leaves_[i].get(), static_cast<uint32_t>(i));
  }
  for (const PlanOp& op : fused_ops) {
    slot_of.emplace(op.output.get(), static_cast<uint32_t>(slot_of.size()));
  }
  const size_t num_leaves = plan->leaves_.size();
  const size_t num_slots = slot_of.size();

  const auto root_it = slot_of.find(root.get());
  if (root_it == slot_of.end()) {
    // Possible only when the forward returned a node created before
    // tracing began — keep the degenerate case out of the interpreter.
    return FailedPreconditionError("model '" + model.name() +
                                   "' returned an untraced root node");
  }
  plan->root_slot_ = root_it->second;
  plan->root_is_leaf_ = plan->root_slot_ < num_leaves;

  // Phase 3: bind slot addresses. Leaf slots alias the model's node
  // values (in-place parameter updates flow through); intermediate
  // slots point into slot_values_, which never resizes.
  plan->slot_values_.resize(num_slots);
  plan->slot_ptr_.resize(num_slots);
  for (uint32_t s = 0; s < num_leaves; ++s) {
    plan->slot_ptr_[s] = &plan->leaves_[s]->value();
  }
  for (uint32_t s = static_cast<uint32_t>(num_leaves); s < num_slots; ++s) {
    plan->slot_ptr_[s] = &plan->slot_values_[s];
  }

  // Phase 4: lower ops to steps with pre-bound input addresses.
  plan->steps_.reserve(fused_ops.size());
  std::vector<uint32_t> last_use(num_slots, 0);
  std::vector<uint32_t> producer(num_slots, 0);
  for (size_t i = 0; i < fused_ops.size(); ++i) {
    PlanOp& op = fused_ops[i];
    Step step;
    step.replay = std::move(op.replay);
    step.op_name = std::move(op.op_name);
    step.fused_ops = op.fused_ops;
    step.input_ptrs.reserve(op.inputs.size());
    for (const ag::Variable& input : op.inputs) {
      const uint32_t slot = slot_of.at(input.get());
      step.input_ptrs.push_back(plan->slot_ptr_[slot]);
      last_use[slot] = static_cast<uint32_t>(i);
    }
    const uint32_t out_slot = slot_of.at(op.output.get());
    step.output_slot = out_slot;
    producer[out_slot] = static_cast<uint32_t>(i);
    plan->steps_.push_back(std::move(step));
  }

  // Phase 5: lifetime analysis. An intermediate dies after the later
  // of its producing step and its last consuming step (a produced-but-
  // never-read value is dropped immediately). The root survives the
  // whole pass; leaves are owned by the model and never released.
  for (uint32_t s = static_cast<uint32_t>(num_leaves); s < num_slots; ++s) {
    if (s == plan->root_slot_) continue;
    const uint32_t release_at = std::max(producer[s], last_use[s]);
    plan->steps_[release_at].release_after.push_back(s);
  }

  // Phase 6: pre-allocate the persistent output (global pool, outside
  // any workspace scope), then size the workspace with a recording run
  // and verify the interpreter reproduces the traced forward bitwise.
  const Tensor& root_value = root->value();
  plan->output_ = Tensor::Uninitialized(root_value.rows(), root_value.cols());
  {
    BufferPool::WorkspaceScope scope(&plan->workspace_);
    plan->ExecuteSteps();
  }
  if (std::memcmp(plan->output_.data(), root_value.data(),
                  root_value.size() * sizeof(float)) != 0) {
    return InternalError("plan self-check failed for model '" + model.name() +
                         "': interpreted logits differ from the eager "
                         "forward");
  }
  plan->workspace_.Finalize();
  return plan;
}

void ExecutionPlan::ExecuteSteps() {
  for (Step& step : steps_) {
    slot_values_[step.output_slot] = step.replay(step.input_ptrs);
    for (const uint32_t dead : step.release_after) {
      slot_values_[dead] = Tensor();
    }
  }
  const Tensor& root = *slot_ptr_[root_slot_];
  LASAGNE_DCHECK(root.SameShape(output_));
  std::memcpy(output_.data(), root.data(), root.size() * sizeof(float));
  if (!root_is_leaf_) slot_values_[root_slot_] = Tensor();
}

const Tensor& ExecutionPlan::Run() {
  BufferPool::WorkspaceScope scope(&workspace_);
  ExecuteSteps();
  return output_;
}

PlanInfo ExecutionPlan::info() const {
  PlanInfo info;
  info.steps = steps_.size();
  info.slots = slot_ptr_.size();
  info.leaves = leaves_.size();
  info.workspace_bytes = workspace_.reserved_bytes();
  info.traced_ops = traced_ops_;
  info.ops_fused_away = traced_ops_ - steps_.size();
  for (const Step& step : steps_) {
    if (step.fused_ops > 1) ++info.fused_steps;
  }
  return info;
}

PlanOpSummary ExecutionPlan::OpSummary() const {
  PlanOpSummary summary;
  summary.traced_ops = traced_ops_;
  summary.steps = steps_.size();
  summary.ops_fused_away = traced_ops_ - steps_.size();
  std::map<std::string, size_t> counts;
  for (const Step& step : steps_) {
    ++counts[step.op_name];
    if (step.fused_ops > 1) ++summary.fused_steps;
  }
  summary.op_counts.assign(counts.begin(), counts.end());
  return summary;
}

size_t PlanOpSummary::Count(const std::string& op_name) const {
  for (const auto& [name, count] : op_counts) {
    if (name == op_name) return count;
  }
  return 0;
}

std::string PlanOpSummary::ToString() const {
  std::string out = std::to_string(steps) + " steps / " +
                    std::to_string(traced_ops) + " traced ops (" +
                    std::to_string(fused_steps) + " fused, " +
                    std::to_string(ops_fused_away) + " ops fused away): ";
  bool first = true;
  for (const auto& [name, count] : op_counts) {
    if (!first) out += ", ";
    first = false;
    out += name + " x" + std::to_string(count);
  }
  return out;
}

}  // namespace lasagne::infer
