#include "infer/plan.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <unordered_set>

#include "autograd/inference.h"
#include "common/check.h"
#include "models/model.h"
#include "nn/layers.h"
#include "tensor/rng.h"

namespace lasagne::infer {

StatusOr<std::unique_ptr<ExecutionPlan>> ExecutionPlan::Compile(
    Model& model) {
  auto plan = std::unique_ptr<ExecutionPlan>(new ExecutionPlan());

  // Phase 1: trace one evaluation-mode forward. The trace owns every
  // node it saw (records retain the Variables), so node addresses stay
  // unique for the lifetime of this function.
  ag::Variable root;
  std::vector<ag::TraceRecord> records;
  {
    ag::NoGradGuard guard;
    ag::ForwardTrace trace;
    Rng rng(1);
    nn::ForwardContext ctx;
    ctx.training = false;
    ctx.rng = &rng;
    root = model.Forward(ctx);
    LASAGNE_CHECK(root != nullptr);
    if (!trace.complete()) {
      return FailedPreconditionError(
          "model '" + model.name() + "' is not plan-compilable: op '" +
          trace.first_untraced_op() + "' has no replay closure (" +
          std::to_string(trace.untraced_ops()) + " untraced op(s))");
    }
    records = trace.TakeRecords();
  }

  // Phase 2: slot assignment. Records are execution-ordered, so any
  // input not produced by an earlier record must be a leaf (a
  // parameter or a cached constant node owned by the model). Leaves
  // get the contiguous slot range [0, num_leaves) — they can appear
  // anywhere in the record stream (a deep model discovers the layer-2
  // weight after the layer-1 output), so discovery needs its own pass
  // before slots are numbered.
  std::unordered_set<const ag::Node*> known;
  for (const ag::TraceRecord& rec : records) {
    for (const ag::Variable& input : rec.inputs) {
      if (known.insert(input.get()).second) plan->leaves_.push_back(input);
    }
    // An output node address can't collide with a leaf or an earlier
    // output: the records retain every Variable, so addresses are not
    // reused while the trace is alive.
    if (!known.insert(rec.output.get()).second) {
      return InternalError("trace produced the same node twice: " +
                           std::string(rec.op_name));
    }
  }
  std::unordered_map<const ag::Node*, uint32_t> slot_of;
  slot_of.reserve(known.size());
  for (size_t i = 0; i < plan->leaves_.size(); ++i) {
    slot_of.emplace(plan->leaves_[i].get(), static_cast<uint32_t>(i));
  }
  for (const ag::TraceRecord& rec : records) {
    slot_of.emplace(rec.output.get(), static_cast<uint32_t>(slot_of.size()));
  }
  const size_t num_leaves = plan->leaves_.size();
  const size_t num_slots = slot_of.size();

  const auto root_it = slot_of.find(root.get());
  if (root_it == slot_of.end()) {
    // Possible only when the forward returned a node created before
    // tracing began — keep the degenerate case out of the interpreter.
    return FailedPreconditionError("model '" + model.name() +
                                   "' returned an untraced root node");
  }
  plan->root_slot_ = root_it->second;
  plan->root_is_leaf_ = plan->root_slot_ < num_leaves;

  // Phase 3: bind slot addresses. Leaf slots alias the model's node
  // values (in-place parameter updates flow through); intermediate
  // slots point into slot_values_, which never resizes.
  plan->slot_values_.resize(num_slots);
  plan->slot_ptr_.resize(num_slots);
  for (uint32_t s = 0; s < num_leaves; ++s) {
    plan->slot_ptr_[s] = &plan->leaves_[s]->value();
  }
  for (uint32_t s = static_cast<uint32_t>(num_leaves); s < num_slots; ++s) {
    plan->slot_ptr_[s] = &plan->slot_values_[s];
  }

  // Phase 4: lower records to steps with pre-bound input addresses.
  plan->steps_.reserve(records.size());
  std::vector<uint32_t> last_use(num_slots, 0);
  std::vector<uint32_t> producer(num_slots, 0);
  for (size_t i = 0; i < records.size(); ++i) {
    ag::TraceRecord& rec = records[i];
    Step step;
    step.replay = std::move(rec.replay);
    step.op_name = rec.op_name;
    step.input_ptrs.reserve(rec.inputs.size());
    for (const ag::Variable& input : rec.inputs) {
      const uint32_t slot = slot_of.at(input.get());
      step.input_ptrs.push_back(plan->slot_ptr_[slot]);
      last_use[slot] = static_cast<uint32_t>(i);
    }
    const uint32_t out_slot = slot_of.at(rec.output.get());
    step.output_slot = out_slot;
    producer[out_slot] = static_cast<uint32_t>(i);
    plan->steps_.push_back(std::move(step));
  }

  // Phase 5: lifetime analysis. An intermediate dies after the later
  // of its producing step and its last consuming step (a produced-but-
  // never-read value is dropped immediately). The root survives the
  // whole pass; leaves are owned by the model and never released.
  for (uint32_t s = static_cast<uint32_t>(num_leaves); s < num_slots; ++s) {
    if (s == plan->root_slot_) continue;
    const uint32_t release_at = std::max(producer[s], last_use[s]);
    plan->steps_[release_at].release_after.push_back(s);
  }

  // Phase 6: pre-allocate the persistent output (global pool, outside
  // any workspace scope), then size the workspace with a recording run
  // and verify the interpreter reproduces the traced forward bitwise.
  const Tensor& root_value = root->value();
  plan->output_ = Tensor::Uninitialized(root_value.rows(), root_value.cols());
  {
    BufferPool::WorkspaceScope scope(&plan->workspace_);
    plan->ExecuteSteps();
  }
  if (std::memcmp(plan->output_.data(), root_value.data(),
                  root_value.size() * sizeof(float)) != 0) {
    return InternalError("plan self-check failed for model '" + model.name() +
                         "': interpreted logits differ from the eager "
                         "forward");
  }
  plan->workspace_.Finalize();
  return plan;
}

void ExecutionPlan::ExecuteSteps() {
  for (Step& step : steps_) {
    slot_values_[step.output_slot] = step.replay(step.input_ptrs);
    for (const uint32_t dead : step.release_after) {
      slot_values_[dead] = Tensor();
    }
  }
  const Tensor& root = *slot_ptr_[root_slot_];
  LASAGNE_DCHECK(root.SameShape(output_));
  std::memcpy(output_.data(), root.data(), root.size() * sizeof(float));
  if (!root_is_leaf_) slot_values_[root_slot_] = Tensor();
}

const Tensor& ExecutionPlan::Run() {
  BufferPool::WorkspaceScope scope(&workspace_);
  ExecuteSteps();
  return output_;
}

PlanInfo ExecutionPlan::info() const {
  PlanInfo info;
  info.steps = steps_.size();
  info.slots = slot_ptr_.size();
  info.leaves = leaves_.size();
  info.workspace_bytes = workspace_.reserved_bytes();
  return info;
}

}  // namespace lasagne::infer
